//! Crash-safe sweep checkpointing: an append-only, fsync'd JSONL journal.
//!
//! A multi-hour sweep records every finished cell to the journal *as it
//! completes* — one compact JSON object per line, `File::sync_data` after
//! each, so a SIGKILL (or a power cut) loses at most the line being written.
//! `--resume <journal>` then skips every journaled cell, re-runs only the
//! rest, and — because each record carries a digest of its body and all
//! cell randomness is position-derived — can *verify* the overlap: one
//! journaled cell is deliberately re-executed and its fresh digest compared
//! against the recorded one. A mismatch means the run is not deterministic
//! (wrong binary, wrong flags, cosmic rays) and is a hard error, never a
//! silently mixed report.
//!
//! Line schema (`ecl-bench/JOURNAL/v1`):
//!
//! ```text
//! {"schema":"ecl-bench/JOURNAL/v1","type":"header","identity":{…}}
//! {"type":"cell","key":"undirected/<input>/<alg>/<gpu>","ok":true,"digest":"<16 hex>","body":{…}}
//! {"type":"note","text":"interrupted","completed":37}
//! ```
//!
//! The `identity` object pins what the results *are* (seed, scale, runs,
//! GPUs, retry policy, watchdog, fault plan, sets) and deliberately excludes
//! what only affects *how* they are computed (worker count, `--isolate`,
//! cell timeouts) — a sweep started in-process can be resumed isolated and
//! vice versa, because cells are bit-identical either way.

use crate::export::Json;
use crate::matrix::Experiment;
use crate::storage::{DurableFile, Storage, StorageError, StorageErrorKind};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Schema tag of the journal header line.
pub const SCHEMA: &str = "ecl-bench/JOURNAL/v1";

/// FNV-1a over a byte stream — the record digest primitive.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Digest of a record body: FNV-1a over its compact rendering, as fixed
/// width hex (a string, because JSON numbers are f64 and would corrupt
/// u64 digests above 2^53).
pub fn digest_of(body: &Json) -> String {
    format!("{:016x}", fnv1a(body.render_compact().as_bytes()))
}

/// The sweep-identity object pinned by the header line. Two configurations
/// with equal identities produce bit-identical cells, so resuming across
/// them is sound.
pub fn identity_json(e: &Experiment, sets: &[&str]) -> Json {
    let fault = match &e.opts.fault {
        None => Json::Null,
        Some(p) => Json::obj(vec![
            ("seed", Json::Num(p.seed as f64)),
            ("bitflip_rate", Json::Num(p.bitflip_rate)),
            ("bitflip_level", Json::Str(format!("{:?}", p.bitflip_level))),
        ]),
    };
    Json::obj(vec![
        ("seed", Json::Num(e.seed as f64)),
        ("scale", Json::Num(e.scale)),
        ("runs", Json::Num(e.runs as f64)),
        (
            "gpus",
            Json::Arr(e.gpus.iter().map(|g| Json::Str(g.name.into())).collect()),
        ),
        ("retries", Json::Num(e.retry.max_attempts as f64)),
        ("retry_stride", Json::Num(e.retry.seed_stride as f64)),
        (
            "watchdog",
            match e.opts.watchdog {
                Some(w) => Json::Num(w as f64),
                None => Json::Null,
            },
        ),
        ("fault", fault),
        (
            "sets",
            Json::Arr(sets.iter().map(|s| Json::Str((*s).into())).collect()),
        ),
    ])
}

/// The append side: thread-safe, one fsync'd line per record.
///
/// The writer never panics on a storage fault: the first failed append
/// latches it **read-only** ([`JournalWriter::degraded`] returns the
/// original error, every later append returns
/// [`StorageErrorKind::ReadOnly`]). Latching matters for crash
/// consistency: whatever partial bytes the failed write left behind stay
/// the *final* line of the file, which the tolerant loader knows how to
/// drop — writing anything after them would glue onto the corpse and
/// corrupt a non-final line, which the loader rightly refuses.
pub struct JournalWriter {
    inner: Mutex<WriterInner>,
    path: PathBuf,
    cells: std::sync::atomic::AtomicUsize,
}

struct WriterInner {
    file: Box<dyn DurableFile>,
    degraded: Option<StorageError>,
}

impl std::fmt::Debug for JournalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JournalWriter")
            .field("path", &self.path)
            .field("cells", &self.cells)
            .finish()
    }
}

impl JournalWriter {
    /// Creates (truncating) a journal and writes its header line.
    pub fn create(path: &Path, identity: &Json) -> Result<JournalWriter, StorageError> {
        Self::create_on(&Storage::real(), path, identity)
    }

    /// [`JournalWriter::create`] on an explicit storage backend.
    pub fn create_on(
        storage: &Storage,
        path: &Path,
        identity: &Json,
    ) -> Result<JournalWriter, StorageError> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                storage.create_dir_all(dir)?;
            }
        }
        let file = storage.create(path)?;
        let w = JournalWriter {
            inner: Mutex::new(WriterInner {
                file,
                degraded: None,
            }),
            path: path.to_path_buf(),
            cells: std::sync::atomic::AtomicUsize::new(0),
        };
        w.append(&Json::obj(vec![
            ("schema", Json::Str(SCHEMA.into())),
            ("type", Json::Str("header".into())),
            ("identity", identity.clone()),
        ]))?;
        Ok(w)
    }

    /// Opens an existing journal for appending (the resume side — the
    /// header is already on disk). A partial trailing line — the artifact
    /// of the kill being resumed from — is truncated away first, so the
    /// records appended now start on a fresh line instead of gluing
    /// themselves onto the corpse and corrupting it.
    pub fn append_to(path: &Path) -> Result<JournalWriter, StorageError> {
        Self::append_to_on(&Storage::real(), path)
    }

    /// [`JournalWriter::append_to`] on an explicit storage backend.
    pub fn append_to_on(storage: &Storage, path: &Path) -> Result<JournalWriter, StorageError> {
        let bytes = storage.read(path)?;
        let keep = bytes
            .iter()
            .rposition(|&b| b == b'\n')
            .map(|i| i + 1)
            .unwrap_or(0);
        if keep < bytes.len() {
            storage.truncate(path, keep as u64)?;
        }
        let file = storage.open_append(path)?;
        Ok(JournalWriter {
            inner: Mutex::new(WriterInner {
                file,
                degraded: None,
            }),
            path: path.to_path_buf(),
            cells: std::sync::atomic::AtomicUsize::new(0),
        })
    }

    /// The storage error that latched this writer read-only, if any.
    pub fn degraded(&self) -> Option<StorageError> {
        self.inner.lock().unwrap().degraded.clone()
    }

    fn append(&self, line: &Json) -> Result<(), StorageError> {
        let mut text = line.render_compact();
        text.push('\n');
        let mut inner = self.inner.lock().unwrap();
        if inner.degraded.is_some() {
            return Err(StorageError {
                op: "append",
                path: self.path.clone(),
                kind: StorageErrorKind::ReadOnly,
            });
        }
        // One fsync per cell: a killed sweep loses at most the in-flight
        // line, which the tolerant loader drops.
        let result = inner
            .file
            .append(text.as_bytes())
            .and_then(|()| inner.file.sync());
        if let Err(e) = &result {
            inner.degraded = Some(e.clone());
        }
        result
    }

    /// Records one finished cell (measurement or typed failure).
    pub fn append_cell(&self, key: &str, ok: bool, body: &Json) -> Result<(), StorageError> {
        self.append(&Json::obj(vec![
            ("type", Json::Str("cell".into())),
            ("key", Json::Str(key.into())),
            ("ok", Json::Bool(ok)),
            ("digest", Json::Str(digest_of(body))),
            ("body", body.clone()),
        ]))?;
        self.cells
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(())
    }

    /// How many cell records this writer has appended (not counting records
    /// already on disk when resuming) — what an interrupt note reports.
    pub fn cells_recorded(&self) -> usize {
        self.cells.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Records a free-form note line (e.g. "interrupted" on SIGINT, with
    /// how many cells had completed).
    pub fn append_note(&self, text: &str, completed: usize) -> Result<(), StorageError> {
        self.append(&Json::obj(vec![
            ("type", Json::Str("note".into())),
            ("text", Json::Str(text.into())),
            ("completed", Json::Num(completed as f64)),
        ]))
    }
}

/// Why a journal failed to load — each case a distinct recovery decision.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadError {
    /// The backing store failed (missing file, EIO, power loss, …).
    Storage(StorageError),
    /// A non-final line is malformed: real corruption, unrecoverable.
    Corrupt {
        /// 1-based line number of the malformed line.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// The header line carries a different schema tag.
    WrongSchema,
    /// No intact header line — the file is empty, or the crash tore the
    /// header itself. Because the header is line one, this also proves no
    /// cell record survived, so recreating the journal from the sweep spec
    /// loses nothing (the recovery rule DESIGN.md §12 documents).
    NoHeader,
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Storage(e) => write!(f, "cannot read journal: {e}"),
            LoadError::Corrupt { line, reason } => {
                write!(f, "journal line {line} is corrupt: {reason}")
            }
            LoadError::WrongSchema => write!(f, "not a {SCHEMA} journal"),
            LoadError::NoHeader => write!(f, "journal has no intact header line"),
        }
    }
}

impl std::error::Error for LoadError {}

/// One journaled cell record.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRecord {
    /// `<set>/<input>/<algorithm>/<gpu>`.
    pub key: String,
    /// Whether the body is a measurement (`true`) or a typed failure.
    pub ok: bool,
    /// Digest of the compact-rendered body, as written.
    pub digest: String,
    /// The full record body — enough to reconstruct the cell without
    /// re-running it.
    pub body: Json,
}

/// A parsed journal: the identity header plus every intact cell record.
#[derive(Debug, Clone, PartialEq)]
pub struct Journal {
    /// The sweep identity the journal was started with.
    pub identity: Json,
    /// Cell records in append order.
    pub records: Vec<JournalRecord>,
}

impl Journal {
    /// Verifies this journal was written by a sweep with exactly the given
    /// identity. A mismatch means the journaled cells were produced by a
    /// different configuration and resuming over them would splice two
    /// incompatible runs into one report.
    pub fn check_identity(&self, expected: &Json) -> Result<(), String> {
        if &self.identity == expected {
            Ok(())
        } else {
            Err(format!(
                "journal identity mismatch — the journal was written by a \
                 different configuration.\n  journal: {}\n  current: {}",
                self.identity.render_compact(),
                expected.render_compact()
            ))
        }
    }

    /// Loads a journal, tolerating exactly one truncated line at the end
    /// (the kill artifact). A malformed line anywhere else is corruption
    /// and a hard error.
    pub fn load(path: &Path) -> Result<Journal, LoadError> {
        Self::load_on(&Storage::real(), path)
    }

    /// [`Journal::load`] on an explicit storage backend.
    pub fn load_on(storage: &Storage, path: &Path) -> Result<Journal, LoadError> {
        let bytes = storage.read(path).map_err(LoadError::Storage)?;
        // Lossy: a torn tail can split a multi-byte UTF-8 sequence, and the
        // mangled final line is dropped anyway.
        let text = String::from_utf8_lossy(&bytes);
        let lines: Vec<&str> = text.split('\n').collect();
        let last_content = lines.iter().rposition(|l| !l.trim().is_empty());
        let mut identity = None;
        let mut records = Vec::new();
        for (idx, line) in lines.iter().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let parsed = match Json::parse(line) {
                Ok(v) => v,
                // Only the final non-empty line may be partial: everything
                // before it was written whole and fsync'd.
                Err(_) if Some(idx) == last_content => break,
                Err(e) => {
                    return Err(LoadError::Corrupt {
                        line: idx + 1,
                        reason: e,
                    })
                }
            };
            let kind = parsed.get("type").and_then(Json::as_str).unwrap_or("");
            match kind {
                "header" => {
                    if parsed.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
                        return Err(LoadError::WrongSchema);
                    }
                    identity = parsed.get("identity").cloned();
                }
                "cell" => {
                    let want = |k: &str| {
                        parsed
                            .get(k)
                            .and_then(Json::as_str)
                            .map(str::to_string)
                            .ok_or(LoadError::Corrupt {
                                line: idx + 1,
                                reason: format!("missing '{k}'"),
                            })
                    };
                    records.push(JournalRecord {
                        key: want("key")?,
                        ok: matches!(parsed.get("ok"), Some(Json::Bool(true))),
                        digest: want("digest")?,
                        body: parsed.get("body").cloned().ok_or(LoadError::Corrupt {
                            line: idx + 1,
                            reason: "missing 'body'".to_string(),
                        })?,
                    });
                }
                "note" => {}
                other => {
                    return Err(LoadError::Corrupt {
                        line: idx + 1,
                        reason: format!("unknown record type '{other}'"),
                    })
                }
            }
        }
        Ok(Journal {
            identity: identity.ok_or(LoadError::NoHeader)?,
            records,
        })
    }

    /// The completed cells a resume may skip, keyed by cell key.
    ///
    /// Failed records are *not* returned — a resume retries them. If the
    /// same key was journaled `ok` twice with different digests the journal
    /// itself witnesses a determinism violation, which is a hard error.
    pub fn ok_records(&self) -> Result<HashMap<&str, &JournalRecord>, String> {
        let mut map: HashMap<&str, &JournalRecord> = HashMap::new();
        for rec in self.records.iter().filter(|r| r.ok) {
            if let Some(prev) = map.insert(rec.key.as_str(), rec) {
                if prev.digest != rec.digest {
                    return Err(format!(
                        "determinism violation inside the journal: cell '{}' was \
                         recorded ok twice with digests {} and {}",
                        rec.key, prev.digest, rec.digest
                    ));
                }
            }
        }
        Ok(map)
    }

    /// The most recently journaled `ok` cell whose key starts with
    /// `prefix` — the cell a resume re-executes to verify the overlap.
    pub fn last_ok_key(&self, prefix: &str) -> Option<String> {
        self.records
            .iter()
            .rev()
            .find(|r| r.ok && r.key.starts_with(prefix))
            .map(|r| r.key.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ecl-journal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&dir);
        dir
    }

    fn body(v: f64) -> Json {
        Json::obj(vec![("speedup", Json::Num(v))])
    }

    #[test]
    fn round_trips_records_and_digests() {
        let path = tmp("roundtrip.jsonl");
        let identity = Json::obj(vec![("seed", Json::Num(7.0))]);
        let w = JournalWriter::create(&path, &identity).unwrap();
        w.append_cell("undirected/a/CC/A100", true, &body(1.25))
            .unwrap();
        w.append_cell("undirected/b/CC/A100", false, &body(0.0))
            .unwrap();
        w.append_note("interrupted", 2).unwrap();
        drop(w);

        let j = Journal::load(&path).unwrap();
        assert_eq!(j.identity, identity);
        assert_eq!(j.records.len(), 2);
        assert!(j.records[0].ok);
        assert!(!j.records[1].ok);
        assert_eq!(j.records[0].digest, digest_of(&body(1.25)));
        assert_eq!(j.records[0].body, body(1.25));
        // Only the ok record is resumable; the failed one re-runs.
        let ok = j.ok_records().unwrap();
        assert_eq!(ok.len(), 1);
        assert!(ok.contains_key("undirected/a/CC/A100"));
        assert_eq!(
            j.last_ok_key("undirected/"),
            Some("undirected/a/CC/A100".to_string())
        );
        assert_eq!(j.last_ok_key("directed/"), None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_final_line_is_dropped_not_fatal() {
        let path = tmp("truncated.jsonl");
        let w = JournalWriter::create(&path, &Json::Null).unwrap();
        w.append_cell("undirected/a/CC/A100", true, &body(2.0))
            .unwrap();
        w.append_cell("undirected/b/CC/A100", true, &body(3.0))
            .unwrap();
        drop(w);
        // Simulate a SIGKILL mid-write: chop the file inside the last line.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 17]).unwrap();

        let j = Journal::load(&path).unwrap();
        assert_eq!(j.records.len(), 1, "partial trailing record is dropped");
        assert_eq!(j.records[0].key, "undirected/a/CC/A100");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_interior_line_is_fatal() {
        let path = tmp("corrupt.jsonl");
        let w = JournalWriter::create(&path, &Json::Null).unwrap();
        w.append_cell("k1", true, &body(1.0)).unwrap();
        w.append_cell("k2", true, &body(2.0)).unwrap();
        drop(w);
        let text = std::fs::read_to_string(&path).unwrap();
        let mangled = text.replacen("\"type\":\"cell\"", "\"type\":cell\"", 1);
        std::fs::write(&path, mangled).unwrap();
        assert!(Journal::load(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn conflicting_ok_duplicates_are_a_determinism_violation() {
        let path = tmp("dups.jsonl");
        let w = JournalWriter::create(&path, &Json::Null).unwrap();
        w.append_cell("k", true, &body(1.0)).unwrap();
        w.append_cell("k", true, &body(1.0)).unwrap(); // benign duplicate
        drop(w);
        assert!(Journal::load(&path).unwrap().ok_records().is_ok());

        let w = JournalWriter::append_to(&path).unwrap();
        w.append_cell("k", true, &body(9.0)).unwrap(); // conflicting
        drop(w);
        assert!(Journal::load(&path).unwrap().ok_records().is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_appends_after_existing_records() {
        let path = tmp("append.jsonl");
        let w = JournalWriter::create(&path, &Json::Null).unwrap();
        w.append_cell("k1", true, &body(1.0)).unwrap();
        drop(w);
        let w = JournalWriter::append_to(&path).unwrap();
        w.append_cell("k2", true, &body(2.0)).unwrap();
        drop(w);
        let j = Journal::load(&path).unwrap();
        assert_eq!(j.records.len(), 2);
        assert_eq!(j.records[1].key, "k2");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_mid_record_drops_only_the_torn_record() {
        // A SIGKILL can land anywhere inside the in-flight line. Tear at
        // every byte offset of the final record — inside the key, inside
        // the digest hex, inside the body, one byte short of the newline —
        // and the loader must always recover exactly the intact prefix.
        let path = tmp("torn-everywhere.jsonl");
        let w = JournalWriter::create(&path, &Json::Null).unwrap();
        w.append_cell("set/a/CC/GPU", true, &body(1.5)).unwrap();
        w.append_cell("set/b/CC/GPU", true, &body(2.5)).unwrap();
        drop(w);
        let text = std::fs::read_to_string(&path).unwrap();
        let last_start = text[..text.len() - 1].rfind('\n').unwrap() + 1;
        for cut in last_start + 1..text.len() - 1 {
            std::fs::write(&path, &text[..cut]).unwrap();
            let j = Journal::load(&path)
                .unwrap_or_else(|e| panic!("tear at byte {cut} was fatal: {e}"));
            assert_eq!(j.records.len(), 1, "tear at byte {cut}");
            assert_eq!(j.records[0].key, "set/a/CC/GPU");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn duplicate_records_from_a_resume_race_are_reconciled_by_digest() {
        // Two processes resuming the same journal (a restarted daemon plus
        // a stale worker, or an operator double-starting a resume) can both
        // append the same cell. Identical bodies are benign — the cell is
        // deterministic, the duplicate collapses to one record. Divergent
        // bodies mean the two writers were *not* running the same sweep,
        // which must surface as a hard error, not a silent last-wins.
        let path = tmp("resume-race.jsonl");
        let w = JournalWriter::create(&path, &Json::Null).unwrap();
        w.append_cell("set/a/CC/GPU", true, &body(1.0)).unwrap();
        drop(w);
        for _ in 0..2 {
            // Each racer opens the journal independently and re-appends.
            let racer = JournalWriter::append_to(&path).unwrap();
            racer.append_cell("set/a/CC/GPU", true, &body(1.0)).unwrap();
            racer.append_cell("set/b/CC/GPU", true, &body(2.0)).unwrap();
            drop(racer);
        }
        let j = Journal::load(&path).unwrap();
        assert_eq!(j.records.len(), 5, "all appends are on disk");
        let ok = j.ok_records().expect("identical duplicates are benign");
        assert_eq!(ok.len(), 2, "duplicates collapse by key");

        // Now one racer disagrees about the bytes: hard error.
        let rogue = JournalWriter::append_to(&path).unwrap();
        rogue
            .append_cell("set/b/CC/GPU", true, &body(99.0))
            .unwrap();
        drop(rogue);
        let err = Journal::load(&path).unwrap().ok_records().unwrap_err();
        assert!(err.contains("determinism violation"), "got: {err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn identity_header_mismatch_is_refused() {
        let path = tmp("identity.jsonl");
        let identity = Json::obj(vec![("seed", Json::Num(1.0)), ("scale", Json::Num(0.05))]);
        let w = JournalWriter::create(&path, &identity).unwrap();
        w.append_cell("k", true, &body(1.0)).unwrap();
        drop(w);
        let j = Journal::load(&path).unwrap();
        j.check_identity(&identity).expect("same identity resumes");
        // Any drift — a different seed, a missing field, a reordered key —
        // is a refusal; the message names both identities for the operator.
        let other = Json::obj(vec![("seed", Json::Num(2.0)), ("scale", Json::Num(0.05))]);
        let err = j.check_identity(&other).unwrap_err();
        assert!(err.contains("identity mismatch"), "got: {err}");
        assert!(err.contains("\"seed\":1") && err.contains("\"seed\":2"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn writer_counts_its_own_cells() {
        let path = tmp("counts.jsonl");
        let w = JournalWriter::create(&path, &Json::Null).unwrap();
        assert_eq!(w.cells_recorded(), 0);
        w.append_cell("a", true, &body(1.0)).unwrap();
        w.append_cell("b", false, &body(2.0)).unwrap();
        w.append_note("interrupted", w.cells_recorded()).unwrap();
        assert_eq!(w.cells_recorded(), 2, "notes don't count");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_or_headerless_journal_is_a_typed_no_header() {
        let path = tmp("empty.jsonl");
        std::fs::write(&path, "").unwrap();
        assert_eq!(Journal::load(&path), Err(LoadError::NoHeader));
        // A header torn mid-file (crash between the header write and its
        // fsync) is the same case: nothing of value survived, recovery may
        // recreate the journal from the sweep spec.
        std::fs::write(&path, "{\"schema\":\"ecl-bench/JOURN").unwrap();
        assert_eq!(Journal::load(&path), Err(LoadError::NoHeader));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn identity_header_truncated_mid_field_never_panics() {
        // Tear the header line at every byte offset. With no records after
        // it, every tear must load as the typed NoHeader (or, if the tear
        // happens to keep the whole line, succeed) — never panic, never a
        // misparsed identity.
        let path = tmp("torn-header.jsonl");
        let identity = Json::obj(vec![
            ("seed", Json::Num(7.0)),
            ("scale", Json::Num(0.05)),
            ("gpus", Json::Arr(vec![Json::Str("A100".into())])),
        ]);
        let w = JournalWriter::create(&path, &identity).unwrap();
        drop(w);
        let text = std::fs::read_to_string(&path).unwrap();
        for cut in 0..text.len() - 1 {
            std::fs::write(&path, &text[..cut]).unwrap();
            match Journal::load(&path) {
                Err(LoadError::NoHeader) => {}
                other => panic!("tear at byte {cut}: expected NoHeader, got {other:?}"),
            }
        }
        // With a record *after* the torn header the journal is genuinely
        // corrupt (the tear is not the final line): typed, fatal, no panic.
        let mut mangled = text[..text.len() / 2].to_string();
        mangled.push('\n');
        mangled.push_str(
            "{\"type\":\"cell\",\"key\":\"k\",\"ok\":true,\"digest\":\"0\",\"body\":{}}\n",
        );
        std::fs::write(&path, &mangled).unwrap();
        match Journal::load(&path) {
            Err(LoadError::Corrupt { line: 1, .. }) => {}
            other => panic!("expected Corrupt at line 1, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_schema_is_typed() {
        let path = tmp("wrong-schema.jsonl");
        std::fs::write(
            &path,
            "{\"schema\":\"ecl-bench/OTHER/v9\",\"type\":\"header\",\"identity\":{}}\n",
        )
        .unwrap();
        assert_eq!(Journal::load(&path), Err(LoadError::WrongSchema));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn failed_append_latches_the_writer_read_only() {
        use crate::storage::{FaultPlan, StorageErrorKind};
        // Fail the fsync of the second cell: the writer must latch, refuse
        // further appends with ReadOnly, and leave the file loadable (the
        // failed line is final, so the tolerant loader drops or keeps it
        // whole — never a glued corpse).
        let (storage, fs) = Storage::mem(FaultPlan {
            seed: 11,
            fail_fsync: Some(2), // header=0, cell a=1, cell b=2
            ..FaultPlan::default()
        });
        let path = std::path::PathBuf::from("/j.jsonl");
        let w = JournalWriter::create_on(&storage, &path, &Json::Null).unwrap();
        assert!(w.degraded().is_none());
        w.append_cell("a", true, &body(1.0)).unwrap();
        let err = w.append_cell("b", true, &body(2.0)).unwrap_err();
        assert_eq!(err.kind, StorageErrorKind::FsyncFailed);
        assert_eq!(w.degraded(), Some(err));
        let err = w.append_cell("c", true, &body(3.0)).unwrap_err();
        assert_eq!(err.kind, StorageErrorKind::ReadOnly, "latched read-only");
        let err = w.append_note("interrupted", 1).unwrap_err();
        assert_eq!(err.kind, StorageErrorKind::ReadOnly, "notes refused too");
        drop(w);
        fs.power_cycle();
        let j = Journal::load_on(&storage, &path).expect("journal still loads");
        assert!(!j.records.is_empty(), "the synced prefix survived");
        assert_eq!(j.records[0].key, "a");
    }

    #[test]
    fn append_to_truncates_a_partial_trailing_line() {
        // Regression: appending after a kill artifact used to glue the new
        // record onto the partial line, corrupting a *non-final* line —
        // which a later load correctly refuses. The artifact must be
        // truncated on open instead.
        let path = tmp("append-partial.jsonl");
        let w = JournalWriter::create(&path, &Json::Null).unwrap();
        w.append_cell("k1", true, &body(1.0)).unwrap();
        w.append_cell("k2", true, &body(2.0)).unwrap();
        drop(w);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 9]).unwrap(); // chop k2's line
        let w = JournalWriter::append_to(&path).unwrap();
        w.append_cell("k3", true, &body(3.0)).unwrap();
        drop(w);
        let j = Journal::load(&path).unwrap();
        let keys: Vec<&str> = j.records.iter().map(|r| r.key.as_str()).collect();
        assert_eq!(keys, ["k1", "k3"], "partial k2 dropped, k3 clean");
        std::fs::remove_file(&path).unwrap();
    }
}
