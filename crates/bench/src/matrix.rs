//! The experiment matrix runner.

use crate::stats::median;
use ecl_core::suite::{run_algorithm, Algorithm, Variant};
use ecl_graph::inputs::{directed_catalog, undirected_catalog, GraphInput};
use ecl_graph::props::{properties, GraphProperties};
use ecl_simt::GpuConfig;

/// One (input, algorithm, GPU) measurement: median baseline and race-free
/// cycles across the seeds, and the derived speedup.
#[derive(Debug, Clone)]
pub struct MeasuredCell {
    /// Input name (paper Table II/III row).
    pub input: &'static str,
    /// Algorithm.
    pub algorithm: Algorithm,
    /// GPU name (paper Table I row).
    pub gpu: &'static str,
    /// Median baseline cycles.
    pub baseline_cycles: f64,
    /// Median race-free cycles.
    pub racefree_cycles: f64,
    /// `baseline / racefree` — above 1 means the race-free code is faster,
    /// exactly as in the paper's tables.
    pub speedup: f64,
    /// Properties of the (scaled) input actually run.
    pub props: GraphProperties,
}

/// All cells measured for one GPU+algorithm-set combination.
#[derive(Debug, Clone, Default)]
pub struct MeasuredTable {
    /// Measured cells, in input-major order.
    pub cells: Vec<MeasuredCell>,
}

impl MeasuredTable {
    /// Cells for one GPU, in catalog order.
    pub fn for_gpu(&self, gpu: &str) -> Vec<&MeasuredCell> {
        self.cells.iter().filter(|c| c.gpu == gpu).collect()
    }

    /// Speedups of one (GPU, algorithm) column.
    pub fn column(&self, gpu: &str, algorithm: Algorithm) -> Vec<f64> {
        self.cells
            .iter()
            .filter(|c| c.gpu == gpu && c.algorithm == algorithm)
            .map(|c| c.speedup)
            .collect()
    }

    /// Renders the paper-style speedup table for one GPU.
    pub fn table(&self, gpu: &GpuConfig) -> String {
        crate::tables::format_speedup_table(self, gpu.name)
    }
}

/// One experiment configuration.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Input scale multiplier (1.0 = repo defaults; the paper's original
    /// graphs are 250–5000x larger — see DESIGN.md).
    pub scale: f64,
    /// Runs per configuration (paper: 9; default 3 — the median is stable
    /// because the simulator's seed jitter is mild, cf. the paper's 0.6%
    /// median deviation).
    pub runs: usize,
    /// GPUs to measure.
    pub gpus: Vec<GpuConfig>,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Experiment {
    fn default() -> Self {
        Experiment {
            scale: 1.0,
            runs: 3,
            gpus: GpuConfig::paper_gpus(),
            seed: 1,
        }
    }
}

/// The experiment matrix: runs (inputs × algorithms × GPUs × variants).
#[derive(Debug, Clone, Default)]
pub struct Matrix {
    experiment: Experiment,
}

impl Matrix {
    /// A quick configuration: all four GPUs, 3 runs, default scale.
    pub fn quick() -> Self {
        Matrix {
            experiment: Experiment::default(),
        }
    }

    /// The paper's full methodology: 9 runs per configuration.
    pub fn paper() -> Self {
        let mut m = Self::quick();
        m.experiment.runs = 9;
        m
    }

    /// Sets the input scale multiplier.
    pub fn scale(mut self, scale: f64) -> Self {
        self.experiment.scale = scale;
        self
    }

    /// Sets the runs per configuration.
    pub fn runs(mut self, runs: usize) -> Self {
        self.experiment.runs = runs.max(1);
        self
    }

    /// Restricts the GPU list.
    pub fn gpus(mut self, gpus: Vec<GpuConfig>) -> Self {
        self.experiment.gpus = gpus;
        self
    }

    /// The current configuration.
    pub fn experiment(&self) -> &Experiment {
        &self.experiment
    }

    /// Runs CC/GC/MIS/MST on the 17 undirected inputs (Tables IV–VII).
    pub fn run_undirected(&self) -> MeasuredTable {
        self.run_set(undirected_catalog(), &Algorithm::UNDIRECTED)
    }

    /// Runs SCC on the 10 directed inputs (Table VIII).
    pub fn run_directed(&self) -> MeasuredTable {
        self.run_set(directed_catalog(), &[Algorithm::Scc])
    }

    fn run_set(&self, inputs: &[GraphInput], algorithms: &[Algorithm]) -> MeasuredTable {
        let e = &self.experiment;
        let mut out = MeasuredTable::default();
        for input in inputs {
            let graph = input.build(e.scale, e.seed);
            let props = properties(&graph);
            for &algorithm in algorithms {
                for gpu in &e.gpus {
                    let cell = self.measure(input.name(), algorithm, &graph, gpu, props);
                    out.cells.push(cell);
                }
            }
        }
        out
    }

    /// Measures one (input, algorithm, GPU) cell.
    pub fn measure(
        &self,
        input: &'static str,
        algorithm: Algorithm,
        graph: &ecl_graph::Csr,
        gpu: &GpuConfig,
        props: GraphProperties,
    ) -> MeasuredCell {
        let e = &self.experiment;
        let mut base = Vec::with_capacity(e.runs);
        let mut free = Vec::with_capacity(e.runs);
        for run in 0..e.runs {
            let seed = e.seed + 1000 * run as u64;
            let b = run_algorithm(algorithm, Variant::Baseline, graph, gpu, seed);
            assert!(b.valid, "{algorithm} baseline invalid on {input}");
            let f = run_algorithm(algorithm, Variant::RaceFree, graph, gpu, seed);
            assert!(f.valid, "{algorithm} race-free invalid on {input}");
            base.push(b.cycles as f64);
            free.push(f.cycles as f64);
        }
        let baseline_cycles = median(&base);
        let racefree_cycles = median(&free);
        MeasuredCell {
            input,
            algorithm,
            gpu: gpu.name,
            baseline_cycles,
            racefree_cycles,
            speedup: baseline_cycles / racefree_cycles,
            props,
        }
    }
}

/// The paper's §VI-A run-stability check: "the nine repeated runs of each
/// configuration are very close in runtime to each other. The median
/// relative deviation is only 0.6%."
///
/// Runs `runs` seeds of one configuration and returns the median relative
/// deviation of the runtimes from their median.
pub fn relative_deviation(
    algorithm: Algorithm,
    variant: crate::matrix::VariantArg,
    graph: &ecl_graph::Csr,
    gpu: &GpuConfig,
    runs: usize,
) -> f64 {
    assert!(runs >= 2, "deviation needs at least two runs");
    let variant = match variant {
        VariantArg::Baseline => Variant::Baseline,
        VariantArg::RaceFree => Variant::RaceFree,
    };
    let times: Vec<f64> = (0..runs)
        .map(|r| run_algorithm(algorithm, variant, graph, gpu, 1 + 1000 * r as u64).cycles as f64)
        .collect();
    let m = median(&times);
    let deviations: Vec<f64> = times.iter().map(|t| (t - m).abs() / m).collect();
    median(&deviations)
}

/// Variant selector for [`relative_deviation`] (mirrors
/// `ecl_core::suite::Variant` without re-exporting it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VariantArg {
    /// The published racy code.
    Baseline,
    /// The converted race-free code.
    RaceFree,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deviation_is_small_like_the_papers() {
        // §VI-A: the paper measured 0.6% median relative deviation; our
        // seeded scheduler jitter should be in the same ballpark.
        let g = ecl_graph::gen::rmat(512, 2048, 0.5, 0.2, 0.2, true, 2);
        let d = relative_deviation(
            Algorithm::Mis,
            VariantArg::Baseline,
            &g,
            &GpuConfig::titan_v(),
            5,
        );
        assert!(d < 0.05, "median relative deviation {d:.3} too large");
    }

    #[test]
    fn single_cell_measures_and_validates() {
        let matrix = Matrix::quick().runs(1).gpus(vec![GpuConfig::test_tiny()]);
        let g = ecl_graph::gen::rmat(256, 1024, 0.57, 0.19, 0.19, true, 1);
        let props = properties(&g);
        let cell = matrix.measure("test", Algorithm::Cc, &g, &GpuConfig::test_tiny(), props);
        assert!(cell.speedup > 0.0);
        assert!(cell.baseline_cycles > 0.0);
    }

    #[test]
    fn tiny_matrix_runs_end_to_end() {
        // One GPU, tiny scale, one algorithm subset via directed set.
        let matrix = Matrix::quick()
            .runs(1)
            .scale(0.05)
            .gpus(vec![GpuConfig::rtx2070_super()]);
        let t = matrix.run_directed();
        assert_eq!(t.cells.len(), 10);
        assert!(t.column("2070 Super", Algorithm::Scc).len() == 10);
    }
}
