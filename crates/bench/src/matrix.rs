//! The experiment matrix runner: a deterministic, parallel sweep engine.
//!
//! The (input × algorithm × GPU) cells of a sweep are independent, so they
//! fan out across a [`crate::pool`] of scoped worker threads. Determinism is
//! preserved by construction: every cell's graph seed and scheduler seeds
//! are pure functions of the experiment seed and the cell's position (see
//! [`graph_seed`]/[`sched_seed`]), and the pool reassembles results in cell
//! order — so the [`MeasuredTable`] of an N-worker run is bit-identical to
//! the serial run's (pinned by `tests/parallel_determinism.rs`).

use crate::isolate::{self, IsolateSpec, WorkerVerdict};
use crate::journal::{self, Journal, JournalWriter};
use crate::pool;
use crate::stats::median;
use ecl_core::suite::{run_algorithm, run_cell, Algorithm, RetryPolicy, RunError, Variant};
use ecl_core::SimOptions;
use ecl_graph::cache::GraphCache;
use ecl_graph::inputs::{directed_catalog, undirected_catalog, GraphInput};
use ecl_graph::props::GraphProperties;
use ecl_simt::GpuConfig;
use std::sync::atomic::AtomicBool;

/// Aggregate profiler counters for one variant of a measured cell, summed
/// across all of the cell's runs (the compact form exported to
/// `BENCH_RESULTS.json`; full per-launch detail stays in
/// [`ecl_simt::metrics::RunStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct VariantProfile {
    /// Aggregate L1 hit rate over every launch of every run.
    pub l1_hit_rate: f64,
    /// Atomic accesses, summed over runs.
    pub atomic_accesses: u64,
    /// Kernel launches, summed over runs.
    pub launches: u64,
}

impl VariantProfile {
    fn from_counters(l1_hits: u64, l1_misses: u64, atomics: u64, launches: u64) -> Self {
        let total = l1_hits + l1_misses;
        VariantProfile {
            l1_hit_rate: if total == 0 {
                0.0
            } else {
                l1_hits as f64 / total as f64
            },
            atomic_accesses: atomics,
            launches,
        }
    }
}

/// One (input, algorithm, GPU) measurement: median baseline and race-free
/// cycles across the seeds, and the derived speedup.
#[derive(Debug, Clone)]
pub struct MeasuredCell {
    /// Input name (paper Table II/III row).
    pub input: &'static str,
    /// Algorithm.
    pub algorithm: Algorithm,
    /// GPU name (paper Table I row).
    pub gpu: &'static str,
    /// Median baseline cycles.
    pub baseline_cycles: f64,
    /// Median race-free cycles.
    pub racefree_cycles: f64,
    /// `baseline / racefree` — above 1 means the race-free code is faster,
    /// exactly as in the paper's tables.
    pub speedup: f64,
    /// Properties of the (scaled) input actually run.
    pub props: GraphProperties,
    /// Aggregate baseline profile across the cell's runs.
    pub baseline_profile: VariantProfile,
    /// Aggregate race-free profile across the cell's runs.
    pub racefree_profile: VariantProfile,
}

/// A cell that produced no measurement: which configuration failed, on which
/// run, and the typed reason. One bad cell used to `assert!` the whole
/// sweep down; now it becomes one of these and the sweep continues.
#[derive(Debug, Clone)]
pub struct CellFailure {
    /// Input name.
    pub input: &'static str,
    /// Algorithm.
    pub algorithm: Algorithm,
    /// GPU name.
    pub gpu: &'static str,
    /// Zero-based run index that failed first.
    pub run: usize,
    /// Why (launch error, verification failure, or host panic).
    pub error: RunError,
}

impl std::fmt::Display for CellFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} / {} on {} (run {}): {}",
            self.input, self.algorithm, self.gpu, self.run, self.error
        )
    }
}

/// All cells measured for one GPU+algorithm-set combination, plus any cells
/// that failed.
#[derive(Debug, Clone, Default)]
pub struct MeasuredTable {
    /// Measured cells, in input-major order.
    pub cells: Vec<MeasuredCell>,
    /// Cells that produced no measurement, in the same order.
    pub failures: Vec<CellFailure>,
}

impl MeasuredTable {
    /// Cells for one GPU, in catalog order.
    pub fn for_gpu(&self, gpu: &str) -> Vec<&MeasuredCell> {
        self.cells.iter().filter(|c| c.gpu == gpu).collect()
    }

    /// Speedups of one (GPU, algorithm) column.
    pub fn column(&self, gpu: &str, algorithm: Algorithm) -> Vec<f64> {
        self.cells
            .iter()
            .filter(|c| c.gpu == gpu && c.algorithm == algorithm)
            .map(|c| c.speedup)
            .collect()
    }

    /// Renders the paper-style speedup table for one GPU.
    pub fn table(&self, gpu: &GpuConfig) -> String {
        crate::tables::format_speedup_table(self, gpu.name)
    }
}

/// One experiment configuration.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Input scale multiplier (1.0 = repo defaults; the paper's original
    /// graphs are 250–5000x larger — see DESIGN.md).
    pub scale: f64,
    /// Runs per configuration (paper: 9; default 3 — the median is stable
    /// because the simulator's seed jitter is mild, cf. the paper's 0.6%
    /// median deviation).
    pub runs: usize,
    /// GPUs to measure.
    pub gpus: Vec<GpuConfig>,
    /// Base RNG seed. Derived streams (graph generation vs. scheduler) are
    /// tag-mixed apart — see [`graph_seed`] and [`sched_seed`].
    pub seed: u64,
    /// Worker threads for the sweep (1 = serial; the result is bit-identical
    /// either way).
    pub jobs: usize,
    /// Simulator options applied to every run (watchdog budget, fault
    /// injection) — the PR 1 machinery, now reachable from the matrix.
    pub opts: SimOptions,
    /// Per-(run, variant) retry policy: a failed measurement is retried
    /// with a stride-bumped scheduler seed before the cell is declared
    /// failed. The default (one attempt) is exactly the old no-retry
    /// behavior, so plain sweeps stay bit-identical.
    pub retry: RetryPolicy,
}

impl Default for Experiment {
    fn default() -> Self {
        Experiment {
            scale: 1.0,
            runs: 3,
            gpus: GpuConfig::paper_gpus(),
            seed: 1,
            jobs: 1,
            opts: SimOptions::default(),
            retry: RetryPolicy {
                max_attempts: 1,
                seed_stride: 1,
            },
        }
    }
}

/// Crash-safety controls for one sweep: checkpointing, resume, process
/// isolation, and cooperative interruption. `SweepControl::default()` is a
/// plain sweep — no journal, no resume, in-process cells, uninterruptible —
/// and produces exactly the same [`MeasuredTable`] as before these controls
/// existed.
#[derive(Debug, Default, Clone, Copy)]
pub struct SweepControl<'a> {
    /// Journal to append each finished cell to.
    pub journal: Option<&'a JournalWriter>,
    /// A previously written journal: its completed cells are reconstructed
    /// instead of re-run, and the most recent one is re-executed anyway to
    /// verify (by digest) that this process reproduces the journaled bits.
    pub resume: Option<&'a Journal>,
    /// Run each cell in a worker subprocess instead of in-process.
    pub isolate: Option<&'a IsolateSpec>,
    /// Checked between cells; once `true`, no new cell starts.
    pub interrupt: Option<&'a AtomicBool>,
}

/// The journal/repro key of one cell: `<set>/<input>/<algorithm>/<gpu>`.
pub fn cell_key(set: &str, input: &str, algorithm: Algorithm, gpu: &str) -> String {
    format!("{set}/{input}/{}/{gpu}", algorithm.name())
}

/// The catalog and algorithm list of one named cell set, exactly as
/// [`Matrix::run_undirected`]/[`Matrix::run_directed`] sweep them.
pub fn set_plan(set: &str) -> Option<(&'static [GraphInput], &'static [Algorithm])> {
    match set {
        "undirected" => Some((undirected_catalog(), &Algorithm::UNDIRECTED)),
        "directed" => Some((directed_catalog(), &[Algorithm::Scc])),
        _ => None,
    }
}

/// Every cell key of one set for one experiment, in the canonical serial
/// order (input-major, then algorithm, then GPU) — the order `run_set`
/// executes them in and the order reports list them in. This is what lets
/// an out-of-order executor (the farm fleet, a resumed sweep) reassemble a
/// byte-identical report from its journal: completion order is irrelevant,
/// only this enumeration order matters.
pub fn set_cell_keys(e: &Experiment, set: &str) -> Vec<String> {
    let Some((inputs, algorithms)) = set_plan(set) else {
        return Vec::new();
    };
    let mut keys = Vec::with_capacity(inputs.len() * algorithms.len() * e.gpus.len());
    for input in inputs {
        for &algorithm in algorithms {
            for gpu in &e.gpus {
                keys.push(cell_key(set, input.name(), algorithm, gpu.name));
            }
        }
    }
    keys
}

/// Domain-separation tag for the graph-generation RNG stream.
const GRAPH_STREAM: u64 = 0x6772_6170_685f_7374; // "graph_st"
/// Domain-separation tag for the scheduler-seed RNG stream.
const SCHED_STREAM: u64 = 0x7363_6865_645f_7374; // "sched_st"

/// SplitMix64 finalizer over a tag-offset base: the same mixing discipline
/// the fault layer uses, applied to the experiment's own streams.
fn stream_seed(base: u64, tag: u64) -> u64 {
    let mut z = base ^ tag.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The seed every catalog graph of an experiment is generated with.
///
/// This used to be the raw experiment seed — the *same* value run 0's
/// scheduler was seeded with, correlating the two RNG streams (the exact
/// hazard the fault layer's SplitMix64 mixing was added to avoid). The
/// streams are now tag-mixed apart: for any base, `graph_seed(base)` and
/// `sched_seed(base, run)` never coincide by construction.
pub fn graph_seed(base: u64) -> u64 {
    stream_seed(base, GRAPH_STREAM)
}

/// The scheduler seed for run `run` of a cell.
///
/// Position-derived (a pure function of the experiment seed and the run
/// index), which is what lets the parallel sweep claim cells in any order
/// without perturbing any cell's randomness.
pub fn sched_seed(base: u64, run: usize) -> u64 {
    stream_seed(base, SCHED_STREAM).wrapping_add(1000 * run as u64)
}

/// The experiment matrix: runs (inputs × algorithms × GPUs × variants).
#[derive(Debug, Clone, Default)]
pub struct Matrix {
    experiment: Experiment,
}

impl Matrix {
    /// A quick configuration: all four GPUs, 3 runs, default scale.
    pub fn quick() -> Self {
        Matrix {
            experiment: Experiment::default(),
        }
    }

    /// The paper's full methodology: 9 runs per configuration.
    pub fn paper() -> Self {
        let mut m = Self::quick();
        m.experiment.runs = 9;
        m
    }

    /// Sets the input scale multiplier.
    pub fn scale(mut self, scale: f64) -> Self {
        self.experiment.scale = scale;
        self
    }

    /// Sets the runs per configuration.
    pub fn runs(mut self, runs: usize) -> Self {
        self.experiment.runs = runs.max(1);
        self
    }

    /// Restricts the GPU list.
    pub fn gpus(mut self, gpus: Vec<GpuConfig>) -> Self {
        self.experiment.gpus = gpus;
        self
    }

    /// Sets the worker-thread count for the sweep. The measured table is
    /// bit-identical at every worker count; only wall-clock changes.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.experiment.jobs = jobs.max(1);
        self
    }

    /// Applies simulator options (watchdog budget, fault plan) to every run
    /// of the sweep.
    pub fn sim_options(mut self, opts: SimOptions) -> Self {
        self.experiment.opts = opts;
        self
    }

    /// Sets the per-measurement retry policy (see [`Experiment::retry`]).
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.experiment.retry = policy;
        self
    }

    /// Sets the base experiment seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.experiment.seed = seed;
        self
    }

    /// The current configuration.
    pub fn experiment(&self) -> &Experiment {
        &self.experiment
    }

    /// Runs CC/GC/MIS/MST on the 17 undirected inputs (Tables IV–VII).
    pub fn run_undirected(&self) -> MeasuredTable {
        self.run_undirected_with(&SweepControl::default())
    }

    /// [`Matrix::run_undirected`] under crash-safety controls.
    pub fn run_undirected_with(&self, ctl: &SweepControl<'_>) -> MeasuredTable {
        self.run_set("undirected", ctl)
    }

    /// Runs SCC on the 10 directed inputs (Table VIII).
    pub fn run_directed(&self) -> MeasuredTable {
        self.run_directed_with(&SweepControl::default())
    }

    /// [`Matrix::run_directed`] under crash-safety controls.
    pub fn run_directed_with(&self, ctl: &SweepControl<'_>) -> MeasuredTable {
        self.run_set("directed", ctl)
    }

    fn run_set(&self, set: &str, ctl: &SweepControl<'_>) -> MeasuredTable {
        let (inputs, algorithms) = set_plan(set).expect("known cell set");
        let e = &self.experiment;
        let gseed = graph_seed(e.seed);
        let cache = GraphCache::new();

        // Flat cell list in the serial order (input-major, then algorithm,
        // then GPU); job index == position in the output table.
        let mut cells: Vec<(usize, Algorithm, usize)> = Vec::new();
        for input_idx in 0..inputs.len() {
            for &algorithm in algorithms {
                for gpu_idx in 0..e.gpus.len() {
                    cells.push((input_idx, algorithm, gpu_idx));
                }
            }
        }

        // Resume bookkeeping: completed cells to reconstruct, and the one
        // journaled cell that is re-executed anyway so its digest can
        // certify the overlap between the old run and this one.
        let resumed = match ctl.resume {
            Some(j) => j.ok_records().unwrap_or_else(|e| panic!("{e}")),
            None => std::collections::HashMap::new(),
        };
        let verify_key = ctl.resume.and_then(|j| j.last_ok_key(&format!("{set}/")));

        let results = pool::run_indexed_until(e.jobs, cells.len(), ctl.interrupt, |i| {
            let (input_idx, algorithm, gpu_idx) = cells[i];
            let input = &inputs[input_idx];
            let gpu = &e.gpus[gpu_idx];
            let key = cell_key(set, input.name(), algorithm, gpu.name);

            let journaled = resumed.get(key.as_str()).copied();
            if let Some(rec) = journaled {
                if verify_key.as_deref() != Some(key.as_str()) {
                    // Skip: reconstruct the cell from the journal body.
                    let cell = crate::export::parse_cell(&rec.body)
                        .unwrap_or_else(|e| panic!("journal body for '{key}' is unusable: {e}"));
                    return Ok(cell);
                }
            }

            let outcome: Result<MeasuredCell, CellFailure> = if let Some(spec) = ctl.isolate {
                let fail = |error: RunError| CellFailure {
                    input: input.name(),
                    algorithm,
                    gpu: gpu.name,
                    run: 0,
                    error,
                };
                match isolate::run_worker(spec, &key, i) {
                    Ok(WorkerVerdict::Ok(body)) => Ok(crate::export::parse_cell(&body)
                        .unwrap_or_else(|e| {
                            panic!("worker for '{key}' returned an unusable cell: {e}")
                        })),
                    Ok(WorkerVerdict::Failed(body)) => Err(crate::export::parse_failure(&body)
                        .unwrap_or_else(|e| {
                            panic!("worker for '{key}' returned an unusable failure: {e}")
                        })),
                    Err(error) => Err(fail(error)),
                }
            } else {
                let graph = cache.get_or_build(input, e.scale, gseed);
                self.try_measure(input.name(), algorithm, &graph.csr, gpu, graph.props)
            };

            let (ok, body) = match &outcome {
                Ok(cell) => (true, crate::export::cell_json(cell)),
                Err(failure) => (false, crate::export::failure_json(failure)),
            };

            if let Some(rec) = journaled {
                // The overlap-verification cell: its fresh digest must match
                // what the journal recorded, or the resumed report would
                // silently mix results from two non-identical runs.
                let fresh = journal::digest_of(&body);
                assert!(
                    ok && fresh == rec.digest,
                    "determinism violation on resume: cell '{key}' re-ran to \
                     digest {fresh} but the journal recorded {} — the journal \
                     was produced by a different binary or configuration",
                    rec.digest
                );
                // Already journaled; don't append a duplicate.
                return outcome;
            }

            if let Some(w) = ctl.journal {
                // A storage fault must not kill a sweep that is otherwise
                // measuring fine: the writer latches itself read-only on
                // the first failure (warn once), the sweep continues
                // unjournaled, and only resumability is lost.
                if let Err(e) = w.append_cell(&key, ok, &body) {
                    if !matches!(e.kind, crate::storage::StorageErrorKind::ReadOnly) {
                        eprintln!(
                            "warning: journal write failed for '{key}': {e} — the \
                             journal is now read-only and this sweep can no longer \
                             be resumed from it"
                        );
                    }
                }
            }
            outcome
        });

        let mut out = MeasuredTable::default();
        for result in results.into_iter().flatten() {
            match result {
                Ok(cell) => out.cells.push(cell),
                Err(failure) => out.failures.push(failure),
            }
        }
        out
    }

    /// Measures one (input, algorithm, GPU) cell, reporting a failed run as
    /// a typed [`CellFailure`] instead of panicking — one invalid cell must
    /// not abort a multi-hour sweep.
    pub fn try_measure(
        &self,
        input: &'static str,
        algorithm: Algorithm,
        graph: &ecl_graph::Csr,
        gpu: &GpuConfig,
        props: GraphProperties,
    ) -> Result<MeasuredCell, CellFailure> {
        let e = &self.experiment;
        let fail = |run: usize, error: RunError| CellFailure {
            input,
            algorithm,
            gpu: gpu.name,
            run,
            error,
        };
        let mut base = Vec::with_capacity(e.runs);
        let mut free = Vec::with_capacity(e.runs);
        // (l1 hits, l1 misses, atomics, launches) per variant.
        let mut counters = [[0u64; 4]; 2];
        let max_attempts = e.retry.max_attempts.max(1);
        for run in 0..e.runs {
            let seed = sched_seed(e.seed, run);
            for (vi, variant) in [Variant::Baseline, Variant::RaceFree]
                .into_iter()
                .enumerate()
            {
                // Bounded retry with a stride-bumped scheduler seed: under
                // fault injection a transient failure gets fresh attempts
                // (each with an i.i.d. fault stream — the run seed is mixed
                // into the plan seed by `SimOptions::make_gpu`) before the
                // cell is journaled as failed. Attempt 0 uses the plain
                // seed, so `max_attempts: 1` is bit-identical to no-retry.
                let mut attempt_result = None;
                for attempt in 0..max_attempts {
                    let seed = seed.wrapping_add(attempt as u64 * e.retry.seed_stride);
                    match run_cell(algorithm, variant, graph, gpu, seed, &e.opts) {
                        Ok(r) => {
                            attempt_result = Some(Ok(r));
                            break;
                        }
                        Err(err) => attempt_result = Some(Err(err)),
                    }
                }
                let r = attempt_result
                    .expect("max_attempts >= 1")
                    .map_err(|err| fail(run, err))?;
                if vi == 0 {
                    base.push(r.cycles as f64);
                } else {
                    free.push(r.cycles as f64);
                }
                for l in &r.stats.launches {
                    counters[vi][0] += l.l1.hits;
                    counters[vi][1] += l.l1.misses;
                    counters[vi][2] += l.atomic_accesses;
                    counters[vi][3] += 1;
                }
            }
        }
        let baseline_cycles = median(&base);
        let racefree_cycles = median(&free);
        let profile = |c: [u64; 4]| VariantProfile::from_counters(c[0], c[1], c[2], c[3]);
        Ok(MeasuredCell {
            input,
            algorithm,
            gpu: gpu.name,
            baseline_cycles,
            racefree_cycles,
            speedup: baseline_cycles / racefree_cycles,
            props,
            baseline_profile: profile(counters[0]),
            racefree_profile: profile(counters[1]),
        })
    }

    /// Measures one cell, panicking on failure (the strict pre-PR-2
    /// behavior, kept for one-off measurements and tests).
    ///
    /// # Panics
    ///
    /// Panics if any run of either variant fails its launch or verification.
    pub fn measure(
        &self,
        input: &'static str,
        algorithm: Algorithm,
        graph: &ecl_graph::Csr,
        gpu: &GpuConfig,
        props: GraphProperties,
    ) -> MeasuredCell {
        self.try_measure(input, algorithm, graph, gpu, props)
            .unwrap_or_else(|f| panic!("{f}"))
    }
}

/// The paper's §VI-A run-stability check: "the nine repeated runs of each
/// configuration are very close in runtime to each other. The median
/// relative deviation is only 0.6%."
///
/// Runs `runs` seeds of one configuration and returns the median relative
/// deviation of the runtimes from their median.
pub fn relative_deviation(
    algorithm: Algorithm,
    variant: crate::matrix::VariantArg,
    graph: &ecl_graph::Csr,
    gpu: &GpuConfig,
    runs: usize,
) -> f64 {
    assert!(runs >= 2, "deviation needs at least two runs");
    let variant = match variant {
        VariantArg::Baseline => Variant::Baseline,
        VariantArg::RaceFree => Variant::RaceFree,
    };
    let times: Vec<f64> = (0..runs)
        .map(|r| {
            // Tag-mixed scheduler stream: callers typically build the graph
            // from small literal seeds, and the raw `1 + 1000r` stream used
            // here shared run 0 with them.
            run_algorithm(algorithm, variant, graph, gpu, sched_seed(1, r)).cycles as f64
        })
        .collect();
    let m = median(&times);
    let deviations: Vec<f64> = times.iter().map(|t| (t - m).abs() / m).collect();
    median(&deviations)
}

/// Variant selector for [`relative_deviation`] (mirrors
/// `ecl_core::suite::Variant` without re-exporting it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VariantArg {
    /// The published racy code.
    Baseline,
    /// The converted race-free code.
    RaceFree,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deviation_is_small_like_the_papers() {
        // §VI-A: the paper measured 0.6% median relative deviation; our
        // seeded scheduler jitter should be in the same ballpark.
        let g = ecl_graph::gen::rmat(512, 2048, 0.5, 0.2, 0.2, true, 2);
        let d = relative_deviation(
            Algorithm::Mis,
            VariantArg::Baseline,
            &g,
            &GpuConfig::titan_v(),
            5,
        );
        assert!(d < 0.05, "median relative deviation {d:.3} too large");
    }

    #[test]
    fn single_cell_measures_and_validates() {
        let matrix = Matrix::quick().runs(1).gpus(vec![GpuConfig::test_tiny()]);
        let g = ecl_graph::gen::rmat(256, 1024, 0.57, 0.19, 0.19, true, 1);
        let props = ecl_graph::props::properties(&g);
        let cell = matrix.measure("test", Algorithm::Cc, &g, &GpuConfig::test_tiny(), props);
        assert!(cell.speedup > 0.0);
        assert!(cell.baseline_cycles > 0.0);
    }

    #[test]
    fn tiny_matrix_runs_end_to_end() {
        // One GPU, tiny scale, one algorithm subset via directed set.
        let matrix = Matrix::quick()
            .runs(1)
            .scale(0.05)
            .gpus(vec![GpuConfig::rtx2070_super()]);
        let t = matrix.run_directed();
        assert_eq!(t.cells.len(), 10);
        assert!(t.failures.is_empty());
        assert!(t.column("2070 Super", Algorithm::Scc).len() == 10);
    }

    #[test]
    fn graph_and_scheduler_streams_are_decorrelated() {
        // Regression: `run_set` used to seed graph generation with `e.seed`
        // while run 0's scheduler seed was also `e.seed + 1000*0` — the two
        // RNG streams were identical. Tag-mixing must keep them apart for
        // any base seed, and each stream must still vary with the base.
        for base in [0u64, 1, 2, 42, u64::MAX, 0xdead_beef] {
            assert_ne!(
                graph_seed(base),
                sched_seed(base, 0),
                "streams correlate at base {base}"
            );
            assert_ne!(graph_seed(base), base, "graph stream is the raw seed");
            assert_ne!(sched_seed(base, 0), base, "sched stream is the raw seed");
        }
        assert_ne!(graph_seed(1), graph_seed(2));
        assert_ne!(sched_seed(1, 0), sched_seed(2, 0));
        assert_eq!(sched_seed(7, 1).wrapping_sub(sched_seed(7, 0)), 1000);
    }

    #[test]
    fn failing_cell_is_recorded_not_fatal() {
        // Regression: `measure` used `assert!(b.valid, …)`, so one bad cell
        // aborted the whole sweep. A 1-cycle watchdog makes *every* cell
        // fail; the sweep must complete, record the failures, and measure
        // nothing — without panicking.
        let matrix = Matrix::quick()
            .runs(1)
            .scale(0.05)
            .gpus(vec![GpuConfig::test_tiny()])
            .sim_options(SimOptions {
                watchdog: Some(1),
                fault: None,
                deadline: None,
                mode_table: None,
            });
        let t = matrix.run_directed();
        assert!(t.cells.is_empty());
        assert_eq!(t.failures.len(), 10);
        for f in &t.failures {
            assert!(matches!(f.error, RunError::Sim(_)), "got {:?}", f.error);
            assert_eq!(f.run, 0);
        }
        // The panicking wrapper still panics, for callers that want that.
        let g = ecl_graph::gen::grid2d_torus(6, 6);
        let props = ecl_graph::props::properties(&g);
        let r = std::panic::catch_unwind(|| {
            matrix.measure("grid", Algorithm::Cc, &g, &GpuConfig::test_tiny(), props)
        });
        assert!(r.is_err());
    }

    #[test]
    fn parallel_and_serial_sweeps_agree() {
        // The full determinism suite lives in tests/parallel_determinism.rs;
        // this is the fast in-crate smoke version.
        let serial = Matrix::quick()
            .runs(1)
            .scale(0.05)
            .gpus(vec![GpuConfig::test_tiny()])
            .run_directed();
        let parallel = Matrix::quick()
            .runs(1)
            .scale(0.05)
            .gpus(vec![GpuConfig::test_tiny()])
            .jobs(4)
            .run_directed();
        assert_eq!(serial.cells.len(), parallel.cells.len());
        for (s, p) in serial.cells.iter().zip(&parallel.cells) {
            assert_eq!(s.input, p.input);
            assert_eq!(s.baseline_cycles.to_bits(), p.baseline_cycles.to_bits());
            assert_eq!(s.racefree_cycles.to_bits(), p.racefree_cycles.to_bits());
        }
    }
}
