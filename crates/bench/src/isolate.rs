//! Process isolation for sweep cells: one worker subprocess per cell.
//!
//! In-process, `ecl_core::suite::run_cell` already converts panics and
//! launch failures into typed errors — but an *abort* (allocation failure,
//! stack overflow, a `panic = "abort"` dependency), a runaway cell, or the
//! OOM killer still takes the whole sweep down. `--isolate` closes that
//! hole: the parent re-invokes its own binary as a per-cell worker with a
//! wall-clock deadline, and a dead or deadlocked worker becomes one typed
//! [`RunError::Worker`] failure while the sweep continues.
//!
//! Protocol: the worker receives `--worker-cell <set>/<input>/<alg>/<gpu>`
//! plus the parent's experiment flags, measures exactly that cell, and
//! prints a single JSON document to stdout:
//!
//! ```text
//! {"schema":"ecl-bench/WORKER_CELL/v1","ok":{…cell body…}}
//! {"schema":"ecl-bench/WORKER_CELL/v1","failed":{…failure body…}}
//! ```
//!
//! It exits 0 in both cases — the verdict travels in the JSON. Any other
//! exit (nonzero, signal, timeout) is a worker death. Stdout and stderr go
//! to per-cell scratch files, not pipes, so a chatty worker can never
//! deadlock against a parent that isn't reading.

use crate::export::Json;
use ecl_core::suite::RunError;
use std::path::PathBuf;
use std::process::Command;
use std::time::{Duration, Instant};

/// How a sweep launches per-cell workers.
#[derive(Debug, Clone)]
pub struct IsolateSpec {
    /// The worker executable — normally `std::env::current_exe()`.
    pub exe: PathBuf,
    /// Experiment flags forwarded to every worker (scale, runs, seed,
    /// watchdog, fault plan…), excluding the `--worker-cell` key.
    pub base_args: Vec<String>,
    /// Wall-clock budget per cell; an overrunning worker is killed.
    pub timeout: Duration,
    /// Directory for per-cell stdout/stderr capture files.
    pub scratch: PathBuf,
}

/// What a worker that *ran to completion* reported.
#[derive(Debug, Clone)]
pub enum WorkerVerdict {
    /// The cell measured cleanly; the body parses with
    /// [`crate::export::parse_cell`].
    Ok(Json),
    /// The cell failed in a typed, in-process way; the body parses with
    /// [`crate::export::parse_failure`].
    Failed(Json),
}

/// Last `limit` bytes of a capture file, trimmed, for failure reports.
fn tail_of(path: &std::path::Path, limit: usize) -> String {
    let text = std::fs::read_to_string(path).unwrap_or_default();
    let start = text.len().saturating_sub(limit);
    // Don't split a UTF-8 scalar.
    let start = (start..text.len())
        .find(|&i| text.is_char_boundary(i))
        .unwrap_or(text.len());
    text[start..].trim().to_string()
}

/// Runs one cell in a worker subprocess. `idx` names the scratch files, so
/// concurrent cells never collide.
///
/// # Errors
///
/// [`RunError::Worker`] when the process dies (nonzero exit, signal, or
/// deadline kill) or produces unparsable output.
pub fn run_worker(spec: &IsolateSpec, key: &str, idx: usize) -> Result<WorkerVerdict, RunError> {
    std::fs::create_dir_all(&spec.scratch).map_err(|e| RunError::Worker {
        exit: None,
        signal: None,
        timed_out: false,
        stderr_tail: format!("cannot create scratch dir: {e}"),
    })?;
    let out_path = spec.scratch.join(format!("cell-{idx}.out"));
    let err_path = spec.scratch.join(format!("cell-{idx}.err"));
    let spawn = |p: &std::path::Path| std::fs::File::create(p);
    let child = spawn(&out_path)
        .and_then(|out| Ok((out, spawn(&err_path)?)))
        .and_then(|(out, err)| {
            Command::new(&spec.exe)
                .args(&spec.base_args)
                .arg("--worker-cell")
                .arg(key)
                .stdin(std::process::Stdio::null())
                .stdout(out)
                .stderr(err)
                .spawn()
        });
    let mut child = match child {
        Ok(c) => c,
        Err(e) => {
            return Err(RunError::Worker {
                exit: None,
                signal: None,
                timed_out: false,
                stderr_tail: format!("failed to spawn worker: {e}"),
            })
        }
    };

    let deadline = Instant::now() + spec.timeout;
    let (status, timed_out) = loop {
        match child.try_wait() {
            Ok(Some(status)) => break (status, false),
            Ok(None) => {
                if Instant::now() >= deadline {
                    let _ = child.kill();
                    let status = child.wait().expect("wait on killed worker");
                    break (status, true);
                }
                std::thread::sleep(Duration::from_millis(15));
            }
            Err(e) => {
                let _ = child.kill();
                return Err(RunError::Worker {
                    exit: None,
                    signal: None,
                    timed_out: false,
                    stderr_tail: format!("wait failed: {e}"),
                });
            }
        }
    };

    let dead = |stderr_tail: String| RunError::Worker {
        exit: status.code(),
        signal: unix_signal(&status),
        timed_out,
        stderr_tail,
    };
    if timed_out || !status.success() {
        return Err(dead(tail_of(&err_path, 2048)));
    }

    let stdout = std::fs::read_to_string(&out_path).unwrap_or_default();
    let doc = Json::parse(stdout.trim())
        .map_err(|e| dead(format!("unparsable worker output ({e}): {}", stdout.trim())))?;
    if doc.get("schema").and_then(Json::as_str) != Some(WORKER_SCHEMA) {
        return Err(dead(format!(
            "worker spoke the wrong schema: {}",
            stdout.trim()
        )));
    }
    let _ = std::fs::remove_file(&out_path);
    let _ = std::fs::remove_file(&err_path);
    if let Some(body) = doc.get("ok") {
        Ok(WorkerVerdict::Ok(body.clone()))
    } else if let Some(body) = doc.get("failed") {
        Ok(WorkerVerdict::Failed(body.clone()))
    } else {
        Err(dead("worker reported neither ok nor failed".to_string()))
    }
}

/// Schema tag of the worker's stdout document.
pub const WORKER_SCHEMA: &str = "ecl-bench/WORKER_CELL/v1";

/// Builds the worker's stdout document (the worker side of the protocol).
pub fn worker_doc(verdict: &WorkerVerdict) -> Json {
    let (tag, body) = match verdict {
        WorkerVerdict::Ok(b) => ("ok", b),
        WorkerVerdict::Failed(b) => ("failed", b),
    };
    Json::obj(vec![
        ("schema", Json::Str(WORKER_SCHEMA.into())),
        (tag, body.clone()),
    ])
}

#[cfg(unix)]
fn unix_signal(status: &std::process::ExitStatus) -> Option<i32> {
    use std::os::unix::process::ExitStatusExt;
    status.signal()
}

#[cfg(not(unix))]
fn unix_signal(_status: &std::process::ExitStatus) -> Option<i32> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    // The fake worker is `sh -c <script>`: the script sits in `base_args`,
    // and the `--worker-cell <key>` tokens run_worker appends land in the
    // script's $0/$1, harmlessly. Real protocol end-to-end coverage (the
    // actual binary as the worker) lives in tests/crash_safety.rs.
    fn spec(script: &str, timeout_ms: u64) -> IsolateSpec {
        IsolateSpec {
            exe: PathBuf::from("/bin/sh"),
            base_args: vec!["-c".into(), script.into()],
            timeout: Duration::from_millis(timeout_ms),
            scratch: std::env::temp_dir().join(format!("ecl-isolate-{}", std::process::id())),
        }
    }

    #[test]
    fn well_formed_worker_output_parses() {
        let doc = r#"{"schema":"ecl-bench/WORKER_CELL/v1","ok":{"speedup":1.5}}"#;
        let s = spec(&format!("printf '%s' '{doc}'"), 5_000);
        let v = run_worker(&s, "k", 0).unwrap();
        match v {
            WorkerVerdict::Ok(body) => {
                assert_eq!(body.get("speedup").and_then(Json::as_num), Some(1.5));
            }
            WorkerVerdict::Failed(_) => panic!("expected ok"),
        }
    }

    #[test]
    fn dying_worker_becomes_typed_error() {
        let s = spec("echo boom >&2; exit 3", 5_000);
        let err = run_worker(&s, "k", 1).unwrap_err();
        match err {
            RunError::Worker {
                exit,
                timed_out,
                stderr_tail,
                ..
            } => {
                assert_eq!(exit, Some(3));
                assert!(!timed_out);
                assert!(stderr_tail.contains("boom"), "tail: {stderr_tail}");
            }
            other => panic!("expected Worker, got {other:?}"),
        }
    }

    #[test]
    fn overrunning_worker_is_killed() {
        let s = spec("sleep 30", 100);
        let err = run_worker(&s, "k", 2).unwrap_err();
        match err {
            RunError::Worker { timed_out, .. } => assert!(timed_out),
            other => panic!("expected Worker, got {other:?}"),
        }
    }

    #[test]
    fn garbage_output_is_a_worker_error() {
        let s = spec("echo not-json", 5_000);
        let err = run_worker(&s, "k", 3).unwrap_err();
        match err {
            RunError::Worker {
                exit, stderr_tail, ..
            } => {
                assert_eq!(exit, Some(0));
                assert!(stderr_tail.contains("unparsable"), "tail: {stderr_tail}");
            }
            other => panic!("expected Worker, got {other:?}"),
        }
    }
}
