//! Process isolation for sweep cells: one worker subprocess per cell.
//!
//! In-process, `ecl_core::suite::run_cell` already converts panics and
//! launch failures into typed errors — but an *abort* (allocation failure,
//! stack overflow, a `panic = "abort"` dependency), a runaway cell, or the
//! OOM killer still takes the whole sweep down. `--isolate` closes that
//! hole: the parent re-invokes its own binary as a per-cell worker with a
//! wall-clock deadline, and a dead or deadlocked worker becomes one typed
//! [`RunError::Worker`] failure while the sweep continues.
//!
//! Protocol: the worker receives `--worker-cell <set>/<input>/<alg>/<gpu>`
//! plus the parent's experiment flags, measures exactly that cell, and
//! prints a single JSON document to stdout:
//!
//! ```text
//! {"schema":"ecl-bench/WORKER_CELL/v1","ok":{…cell body…}}
//! {"schema":"ecl-bench/WORKER_CELL/v1","failed":{…failure body…}}
//! ```
//!
//! It exits 0 in both cases — the verdict travels in the JSON. Any other
//! exit (nonzero, signal, timeout) is a worker death. Stdout and stderr go
//! to per-cell scratch files, not pipes, so a chatty worker can never
//! deadlock against a parent that isn't reading.

use crate::export::Json;
use ecl_core::suite::RunError;
use std::io::{Read, Seek, SeekFrom};
use std::path::PathBuf;
use std::process::Command;
use std::time::{Duration, Instant};

/// Byte budget for every stderr/stdout tail a dead worker leaves behind in
/// a [`RunError::Worker`]. The tail travels into journal lines, repro
/// bundles, and `BENCH_RESULTS.json`, so a log-spamming worker must not be
/// able to balloon those artifacts: whatever the worker wrote, at most this
/// many bytes of it survive.
pub const STDERR_TAIL_BUDGET: usize = 2048;

/// Truncates `text` to its last `limit` bytes on a UTF-8 boundary. The
/// in-memory counterpart of [`tail_of`], for tails that arrive as strings
/// (worker stdout echoes, farm supervisor captures).
pub fn cap_tail(text: &str, limit: usize) -> String {
    let start = text.len().saturating_sub(limit);
    let start = (start..=text.len())
        .find(|&i| text.is_char_boundary(i))
        .unwrap_or(text.len());
    text[start..].to_string()
}

/// How a sweep launches per-cell workers.
#[derive(Debug, Clone)]
pub struct IsolateSpec {
    /// The worker executable — normally `std::env::current_exe()`.
    pub exe: PathBuf,
    /// Experiment flags forwarded to every worker (scale, runs, seed,
    /// watchdog, fault plan…), excluding the `--worker-cell` key.
    pub base_args: Vec<String>,
    /// Wall-clock budget per cell; an overrunning worker is killed.
    pub timeout: Duration,
    /// Directory for per-cell stdout/stderr capture files.
    pub scratch: PathBuf,
}

/// What a worker that *ran to completion* reported.
#[derive(Debug, Clone)]
pub enum WorkerVerdict {
    /// The cell measured cleanly; the body parses with
    /// [`crate::export::parse_cell`].
    Ok(Json),
    /// The cell failed in a typed, in-process way; the body parses with
    /// [`crate::export::parse_failure`].
    Failed(Json),
}

/// Last `limit` bytes of a capture file, trimmed, for failure reports.
/// Seeks instead of slurping: a worker that spammed gigabytes of stderr
/// costs `limit` bytes of memory here, not its file size.
pub fn tail_of(path: &std::path::Path, limit: usize) -> String {
    let read_tail = || -> std::io::Result<Vec<u8>> {
        let mut f = std::fs::File::open(path)?;
        let len = f.seek(SeekFrom::End(0))?;
        let start = len.saturating_sub(limit as u64);
        f.seek(SeekFrom::Start(start))?;
        let mut buf = Vec::with_capacity(limit.min(len as usize));
        f.take(limit as u64).read_to_end(&mut buf)?;
        Ok(buf)
    };
    let bytes = read_tail().unwrap_or_default();
    // Seeking may have landed mid-scalar (and spam may not be UTF-8 at
    // all); lossy conversion keeps whatever is readable.
    String::from_utf8_lossy(&bytes).trim().to_string()
}

/// Runs one cell in a worker subprocess. `idx` names the scratch files, so
/// concurrent cells never collide.
///
/// # Errors
///
/// [`RunError::Worker`] when the process dies (nonzero exit, signal, or
/// deadline kill) or produces unparsable output.
pub fn run_worker(spec: &IsolateSpec, key: &str, idx: usize) -> Result<WorkerVerdict, RunError> {
    std::fs::create_dir_all(&spec.scratch).map_err(|e| RunError::Worker {
        exit: None,
        signal: None,
        timed_out: false,
        stderr_tail: format!("cannot create scratch dir: {e}"),
    })?;
    let out_path = spec.scratch.join(format!("cell-{idx}.out"));
    let err_path = spec.scratch.join(format!("cell-{idx}.err"));
    let spawn = |p: &std::path::Path| std::fs::File::create(p);
    let child = spawn(&out_path)
        .and_then(|out| Ok((out, spawn(&err_path)?)))
        .and_then(|(out, err)| {
            Command::new(&spec.exe)
                .args(&spec.base_args)
                .arg("--worker-cell")
                .arg(key)
                .stdin(std::process::Stdio::null())
                .stdout(out)
                .stderr(err)
                .spawn()
        });
    let mut child = match child {
        Ok(c) => c,
        Err(e) => {
            return Err(RunError::Worker {
                exit: None,
                signal: None,
                timed_out: false,
                stderr_tail: format!("failed to spawn worker: {e}"),
            })
        }
    };

    let deadline = Instant::now() + spec.timeout;
    let (status, timed_out) = loop {
        match child.try_wait() {
            Ok(Some(status)) => break (status, false),
            Ok(None) => {
                if Instant::now() >= deadline {
                    let _ = child.kill();
                    let status = child.wait().expect("wait on killed worker");
                    break (status, true);
                }
                std::thread::sleep(Duration::from_millis(15));
            }
            Err(e) => {
                let _ = child.kill();
                return Err(RunError::Worker {
                    exit: None,
                    signal: None,
                    timed_out: false,
                    stderr_tail: format!("wait failed: {e}"),
                });
            }
        }
    };

    let dead = |stderr_tail: String| RunError::Worker {
        exit: status.code(),
        signal: unix_signal(&status),
        timed_out,
        stderr_tail,
    };
    if timed_out || !status.success() {
        return Err(dead(tail_of(&err_path, STDERR_TAIL_BUDGET)));
    }

    let stdout = std::fs::read_to_string(&out_path).unwrap_or_default();
    // The stdout echo in the error is capped too: a worker spamming garbage
    // to stdout must not balloon the failure payload any more than a
    // stderr-spammer can.
    let doc = Json::parse(stdout.trim()).map_err(|e| {
        dead(format!(
            "unparsable worker output ({e}): {}",
            cap_tail(stdout.trim(), STDERR_TAIL_BUDGET)
        ))
    })?;
    if doc.get("schema").and_then(Json::as_str) != Some(WORKER_SCHEMA) {
        return Err(dead(format!(
            "worker spoke the wrong schema: {}",
            stdout.trim()
        )));
    }
    let _ = std::fs::remove_file(&out_path);
    let _ = std::fs::remove_file(&err_path);
    if let Some(body) = doc.get("ok") {
        Ok(WorkerVerdict::Ok(body.clone()))
    } else if let Some(body) = doc.get("failed") {
        Ok(WorkerVerdict::Failed(body.clone()))
    } else {
        Err(dead("worker reported neither ok nor failed".to_string()))
    }
}

/// Schema tag of the worker's stdout document.
pub const WORKER_SCHEMA: &str = "ecl-bench/WORKER_CELL/v1";

/// Builds the worker's stdout document (the worker side of the protocol).
pub fn worker_doc(verdict: &WorkerVerdict) -> Json {
    let (tag, body) = match verdict {
        WorkerVerdict::Ok(b) => ("ok", b),
        WorkerVerdict::Failed(b) => ("failed", b),
    };
    Json::obj(vec![
        ("schema", Json::Str(WORKER_SCHEMA.into())),
        (tag, body.clone()),
    ])
}

#[cfg(unix)]
fn unix_signal(status: &std::process::ExitStatus) -> Option<i32> {
    use std::os::unix::process::ExitStatusExt;
    status.signal()
}

#[cfg(not(unix))]
fn unix_signal(_status: &std::process::ExitStatus) -> Option<i32> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    // The fake worker is `sh -c <script>`: the script sits in `base_args`,
    // and the `--worker-cell <key>` tokens run_worker appends land in the
    // script's $0/$1, harmlessly. Real protocol end-to-end coverage (the
    // actual binary as the worker) lives in tests/crash_safety.rs.
    fn spec(script: &str, timeout_ms: u64) -> IsolateSpec {
        IsolateSpec {
            exe: PathBuf::from("/bin/sh"),
            base_args: vec!["-c".into(), script.into()],
            timeout: Duration::from_millis(timeout_ms),
            scratch: std::env::temp_dir().join(format!("ecl-isolate-{}", std::process::id())),
        }
    }

    #[test]
    fn well_formed_worker_output_parses() {
        let doc = r#"{"schema":"ecl-bench/WORKER_CELL/v1","ok":{"speedup":1.5}}"#;
        let s = spec(&format!("printf '%s' '{doc}'"), 5_000);
        let v = run_worker(&s, "k", 0).unwrap();
        match v {
            WorkerVerdict::Ok(body) => {
                assert_eq!(body.get("speedup").and_then(Json::as_num), Some(1.5));
            }
            WorkerVerdict::Failed(_) => panic!("expected ok"),
        }
    }

    #[test]
    fn dying_worker_becomes_typed_error() {
        let s = spec("echo boom >&2; exit 3", 5_000);
        let err = run_worker(&s, "k", 1).unwrap_err();
        match err {
            RunError::Worker {
                exit,
                timed_out,
                stderr_tail,
                ..
            } => {
                assert_eq!(exit, Some(3));
                assert!(!timed_out);
                assert!(stderr_tail.contains("boom"), "tail: {stderr_tail}");
            }
            other => panic!("expected Worker, got {other:?}"),
        }
    }

    #[test]
    fn overrunning_worker_is_killed() {
        let s = spec("sleep 30", 100);
        let err = run_worker(&s, "k", 2).unwrap_err();
        match err {
            RunError::Worker { timed_out, .. } => assert!(timed_out),
            other => panic!("expected Worker, got {other:?}"),
        }
    }

    #[test]
    fn log_spamming_worker_tails_are_capped() {
        // 4 MiB of stderr spam, then a marker, then death: the captured
        // tail must stay within the byte budget and keep the *end* of the
        // stream (where the actual panic message lives).
        let s = spec(
            "yes spamspamspamspam | head -c 4194304 >&2; echo FINAL-MARKER >&2; exit 7",
            30_000,
        );
        let err = run_worker(&s, "k", 10).unwrap_err();
        match err {
            RunError::Worker { stderr_tail, .. } => {
                assert!(
                    stderr_tail.len() <= STDERR_TAIL_BUDGET,
                    "tail ballooned to {} bytes",
                    stderr_tail.len()
                );
                assert!(stderr_tail.ends_with("FINAL-MARKER"), "tail lost the end");
            }
            other => panic!("expected Worker, got {other:?}"),
        }

        // Same budget for stdout spam that fails to parse as the protocol.
        let s = spec("yes notjson | head -c 4194304", 30_000);
        let err = run_worker(&s, "k", 11).unwrap_err();
        match err {
            RunError::Worker { stderr_tail, .. } => {
                assert!(stderr_tail.contains("unparsable"));
                assert!(
                    stderr_tail.len() <= STDERR_TAIL_BUDGET + 128,
                    "stdout echo ballooned to {} bytes",
                    stderr_tail.len()
                );
            }
            other => panic!("expected Worker, got {other:?}"),
        }
    }

    #[test]
    fn cap_tail_respects_utf8_boundaries() {
        assert_eq!(cap_tail("abcdef", 3), "def");
        assert_eq!(cap_tail("abc", 10), "abc");
        assert_eq!(cap_tail("", 4), "");
        // 'é' is two bytes; a cut landing inside it must skip the scalar.
        let s = "xéy";
        assert_eq!(cap_tail(s, 2), "y");
        assert_eq!(cap_tail(s, 3), "éy");
    }

    #[test]
    fn garbage_output_is_a_worker_error() {
        let s = spec("echo not-json", 5_000);
        let err = run_worker(&s, "k", 3).unwrap_err();
        match err {
            RunError::Worker {
                exit, stderr_tail, ..
            } => {
                assert_eq!(exit, Some(0));
                assert!(stderr_tail.contains("unparsable"), "tail: {stderr_tail}");
            }
            other => panic!("expected Worker, got {other:?}"),
        }
    }
}
