//! Repro bundles: one self-contained JSON file per failed cell.
//!
//! A bundle (`ecl-bench/REPRO/v1`) records the cell key, the typed error,
//! the exact experiment seeds, and a ready-to-run `--replay` command line —
//! everything needed to re-execute precisely the failing configuration
//! without the rest of the sweep. Both the `all_tests` sweep and the farm
//! daemon write them through this module.
//!
//! File naming: the first failure of a cell gets `<slug>.json`. A cell that
//! fails *again* — on a resumed run, a retried run, or a later attempt of a
//! quarantined poison cell — gets `<slug>.attempt2.json`, `.attempt3.json`,
//! … instead of overwriting the earlier bundle: the sequence of failures is
//! itself evidence (a flaky cell looks different from a deterministic one),
//! so every bundle is kept.

use crate::export::Json;
use crate::storage::{Storage, StorageError};
use std::path::{Path, PathBuf};

/// Schema tag of a repro bundle.
pub const SCHEMA: &str = "ecl-bench/REPRO/v1";

/// File-name slug for a cell key: path separators and anything non-portable
/// become `-`.
pub fn slug(key: &str) -> String {
    key.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '-'
            }
        })
        .collect()
}

/// The path the next bundle for `key` should be written to: `<slug>.json`
/// if the cell never failed before, otherwise the first unused
/// `<slug>.attemptN.json` — earlier bundles are never overwritten.
pub fn unique_bundle_path(dir: &Path, key: &str) -> PathBuf {
    unique_bundle_path_on(&Storage::real(), dir, key)
}

/// [`unique_bundle_path`] on an explicit storage backend.
pub fn unique_bundle_path_on(storage: &Storage, dir: &Path, key: &str) -> PathBuf {
    let base = slug(key);
    let first = dir.join(format!("{base}.json"));
    if !storage.exists(&first) {
        return first;
    }
    (2..)
        .map(|n| dir.join(format!("{base}.attempt{n}.json")))
        .find(|p| !storage.exists(p))
        .expect("some attempt suffix is unused")
}

/// Everything a bundle serializes besides its own path.
#[derive(Debug, Clone)]
pub struct Bundle<'a> {
    /// The cell key `<set>/<input>/<algorithm>/<gpu>`.
    pub key: &'a str,
    /// Display form of the typed error.
    pub error: String,
    /// Zero-based run index that failed first.
    pub run: usize,
    /// The experiment block (seeds, scale, retry policy…).
    pub experiment: Json,
    /// Worker argv that reproduces the failing configuration.
    pub replay_args: Vec<String>,
}

/// Writes one bundle into `dir` (created if needed) at a collision-free
/// path and returns that path. Failures are typed, never fatal to the
/// caller's sweep: a bundle is evidence, not a result, so callers skip it
/// with a journal note and keep going (see `all_tests::write_repro_bundles`).
pub fn write_bundle(dir: &Path, b: &Bundle<'_>) -> Result<PathBuf, StorageError> {
    write_bundle_on(&Storage::real(), dir, b)
}

/// [`write_bundle`] on an explicit storage backend.
pub fn write_bundle_on(
    storage: &Storage,
    dir: &Path,
    b: &Bundle<'_>,
) -> Result<PathBuf, StorageError> {
    storage.create_dir_all(dir)?;
    let path = unique_bundle_path_on(storage, dir, b.key);
    let doc = Json::obj(vec![
        ("schema", Json::Str(SCHEMA.into())),
        ("key", Json::Str(b.key.into())),
        ("error", Json::Str(b.error.clone())),
        ("run", Json::Num(b.run as f64)),
        ("experiment", b.experiment.clone()),
        (
            "replay",
            Json::obj(vec![
                (
                    "args",
                    Json::Arr(b.replay_args.iter().cloned().map(Json::Str).collect()),
                ),
                (
                    "cli",
                    Json::Str(format!(
                        "cargo run --release -p ecl-bench --bin all_tests -- --replay {}",
                        path.display()
                    )),
                ),
            ]),
        ),
    ]);
    let mut text = doc.render();
    text.push('\n');
    // Atomic (tmp + fsync + rename): a half-written bundle that *looks*
    // replayable is worse than no bundle.
    storage.write_atomic(&path, text.as_bytes())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ecl-repro-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn bundle(key: &str) -> Bundle<'_> {
        Bundle {
            key,
            error: "worker process died".into(),
            run: 0,
            experiment: Json::obj(vec![("seed", Json::Num(1.0))]),
            replay_args: vec!["--seed".into(), "1".into()],
        }
    }

    #[test]
    fn slug_is_filesystem_safe() {
        assert_eq!(
            slug("directed/cage14/SCC/2070 Super"),
            "directed-cage14-SCC-2070-Super"
        );
    }

    #[test]
    fn repeated_failures_keep_every_bundle() {
        // Regression: a cell failing again on a resumed or retried run used
        // to overwrite the earlier bundle at the same path.
        let dir = scratch("collide");
        let b = bundle("directed/cage14/SCC/TestTiny");
        let p1 = write_bundle(&dir, &b).unwrap();
        let p2 = write_bundle(&dir, &b).unwrap();
        let p3 = write_bundle(&dir, &b).unwrap();
        assert_eq!(p1.file_name().unwrap(), "directed-cage14-SCC-TestTiny.json");
        assert_eq!(
            p2.file_name().unwrap(),
            "directed-cage14-SCC-TestTiny.attempt2.json"
        );
        assert_eq!(
            p3.file_name().unwrap(),
            "directed-cage14-SCC-TestTiny.attempt3.json"
        );
        for p in [&p1, &p2, &p3] {
            let doc = Json::parse(&std::fs::read_to_string(p).unwrap()).unwrap();
            assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
            // Each bundle's replay line points at its own path.
            let cli = doc.get("replay").unwrap().get("cli").unwrap();
            assert!(cli.as_str().unwrap().ends_with(&p.display().to_string()));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn full_disk_is_a_typed_error_not_a_panic() {
        use crate::storage::{FaultPlan, StorageErrorKind};
        let (storage, _fs) = Storage::mem(FaultPlan {
            seed: 2,
            disk_capacity: Some(16),
            ..FaultPlan::default()
        });
        let dir = PathBuf::from("/repro");
        let err = write_bundle_on(&storage, &dir, &bundle("set/in/ALG/GPU")).unwrap_err();
        assert_eq!(err.kind, StorageErrorKind::Enospc);
        // And the target path never holds a torn document.
        assert!(!storage.exists(&dir.join("set-in-ALG-GPU.json")));
    }
}
