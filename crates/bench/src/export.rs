//! Machine-readable bench artifacts: a tiny dependency-free JSON layer and
//! the `BENCH_RESULTS.json` report built from measured tables.
//!
//! The repo vendors stubs instead of real crates, so there is no serde; the
//! [`Json`] tree here writes deterministic, pretty-printed JSON (object keys
//! keep insertion order, floats use Rust's shortest round-trip formatting)
//! and parses it back for the round-trip tests. Two runs of the same
//! experiment — at any worker count — must produce byte-identical reports,
//! except for the optional `timing` block, which callers omit when diffing.

use crate::matrix::{CellFailure, Experiment, MeasuredCell, MeasuredTable, VariantProfile};
use crate::stats::geomean;
use ecl_core::suite::{Algorithm, RunError};
use ecl_graph::inputs::{directed_catalog, undirected_catalog};
use ecl_graph::props::GraphProperties;
use ecl_simt::metrics::RunStats;
use ecl_simt::GpuConfig;
use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order so rendered output is
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; non-finite values render as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object constructor from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation (no trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Renders the value on a single line with no whitespace — the form the
    /// JSONL journal writes (one record per line) and the form record
    /// digests are computed over. Parses back to the same tree as
    /// [`Json::render`]'s output.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // `{}` on f64 is the shortest representation that parses
                    // back to the same bits — exactly what a diffable,
                    // round-trippable artifact needs.
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message with a byte offset on malformed
    /// input.
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Combine a surrogate pair when one follows.
                            let c = if (0xd800..0xdc00).contains(&cp)
                                && self.bytes[self.pos..].starts_with(b"\\u")
                            {
                                self.pos += 2;
                                let lo = self.hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xd800) << 10) + (lo.wrapping_sub(0xdc00));
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| "bad \\u escape".to_string())?);
                            continue; // hex4 already advanced pos
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // on char boundaries is safe via chars()).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "bad \\u escape".to_string())?;
        let cp = u32::from_str_radix(text, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos += 4;
        Ok(cp)
    }
}

/// Wall-clock metadata for one full sweep. Excluded from determinism diffs
/// (pass `timing: None` to [`BenchReport`]) because it is the one part of
/// the report that legitimately differs between runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepTiming {
    /// Seconds spent on the undirected (CC/GC/MIS/MST) sweep.
    pub undirected_seconds: f64,
    /// Seconds spent on the directed (SCC) sweep.
    pub directed_seconds: f64,
}

/// Everything `BENCH_RESULTS.json` serializes.
#[derive(Debug, Clone)]
pub struct BenchReport<'a> {
    /// The experiment configuration that produced the tables.
    pub experiment: &'a Experiment,
    /// The undirected sweep (Tables IV–VII).
    pub undirected: &'a MeasuredTable,
    /// The directed sweep (Table VIII).
    pub directed: &'a MeasuredTable,
    /// Wall-clock metadata, or `None` for byte-stable diffable output.
    pub timing: Option<SweepTiming>,
}

impl BenchReport<'_> {
    /// Builds the JSON tree.
    pub fn to_json(&self) -> Json {
        let e = self.experiment;
        let mut top = vec![
            ("schema", Json::Str("ecl-bench/BENCH_RESULTS/v1".into())),
            (
                "experiment",
                Json::obj(vec![
                    ("scale", Json::Num(e.scale)),
                    ("runs", Json::Num(e.runs as f64)),
                    ("seed", Json::Num(e.seed as f64)),
                    ("jobs", Json::Num(e.jobs as f64)),
                    (
                        "gpus",
                        Json::Arr(e.gpus.iter().map(|g| Json::Str(g.name.into())).collect()),
                    ),
                ]),
            ),
        ];
        if let Some(t) = self.timing {
            top.push((
                "timing",
                Json::obj(vec![
                    ("wall_undirected_seconds", Json::Num(t.undirected_seconds)),
                    ("wall_directed_seconds", Json::Num(t.directed_seconds)),
                    (
                        "wall_total_seconds",
                        Json::Num(t.undirected_seconds + t.directed_seconds),
                    ),
                ]),
            ));
        }
        top.push((
            "tables",
            Json::obj(vec![
                ("undirected", table_json(self.undirected)),
                ("directed", table_json(self.directed)),
            ]),
        ));
        Json::obj(top)
    }

    /// Renders the full pretty-printed document (with trailing newline).
    pub fn render(&self) -> String {
        let mut s = self.to_json().render();
        s.push('\n');
        s
    }
}

/// Serializes one [`MeasuredTable`]: every cell, every recorded failure, and
/// the per-(GPU, algorithm) min/geomean/max summary rows of the paper's
/// tables.
pub fn table_json(table: &MeasuredTable) -> Json {
    let cells = table.cells.iter().map(cell_json).collect();
    let failures = table.failures.iter().map(failure_json).collect();

    // Summary rows in first-appearance order, mirroring the text tables.
    let mut gpus: Vec<&'static str> = Vec::new();
    let mut algorithms: Vec<Algorithm> = Vec::new();
    for c in &table.cells {
        if !gpus.contains(&c.gpu) {
            gpus.push(c.gpu);
        }
        if !algorithms.contains(&c.algorithm) {
            algorithms.push(c.algorithm);
        }
    }
    let mut summary = Vec::new();
    for gpu in &gpus {
        for &alg in &algorithms {
            let col = table.column(gpu, alg);
            if col.is_empty() {
                continue;
            }
            summary.push(Json::obj(vec![
                ("gpu", Json::Str((*gpu).into())),
                ("algorithm", Json::Str(alg.name().into())),
                (
                    "min",
                    Json::Num(col.iter().copied().fold(f64::INFINITY, f64::min)),
                ),
                ("geomean", Json::Num(geomean(&col))),
                ("max", Json::Num(col.iter().copied().fold(0.0, f64::max))),
            ]));
        }
    }

    Json::obj(vec![
        ("cells", Json::Arr(cells)),
        ("failures", Json::Arr(failures)),
        ("summary", Json::Arr(summary)),
    ])
}

/// Serializes one measured cell. This is the *lossless* form: together with
/// [`parse_cell`] it round-trips every field bit-exactly (floats use
/// shortest round-trip formatting), which is what lets a resumed sweep
/// reconstruct journaled cells without re-running them and still produce a
/// byte-identical report.
pub fn cell_json(c: &MeasuredCell) -> Json {
    Json::obj(vec![
        ("input", Json::Str(c.input.into())),
        ("algorithm", Json::Str(c.algorithm.name().into())),
        ("gpu", Json::Str(c.gpu.into())),
        ("baseline_cycles", Json::Num(c.baseline_cycles)),
        ("racefree_cycles", Json::Num(c.racefree_cycles)),
        ("speedup", Json::Num(c.speedup)),
        ("vertices", Json::Num(c.props.num_vertices as f64)),
        ("edges", Json::Num(c.props.num_edges as f64)),
        ("avg_degree", Json::Num(c.props.avg_degree)),
        ("max_degree", Json::Num(c.props.max_degree as f64)),
        ("min_degree", Json::Num(c.props.min_degree as f64)),
        ("baseline_profile", profile_json(&c.baseline_profile)),
        ("racefree_profile", profile_json(&c.racefree_profile)),
    ])
}

/// Serializes one cell failure (same shape `BENCH_RESULTS.json` uses).
pub fn failure_json(f: &CellFailure) -> Json {
    Json::obj(vec![
        ("input", Json::Str(f.input.into())),
        ("algorithm", Json::Str(f.algorithm.name().into())),
        ("gpu", Json::Str(f.gpu.into())),
        ("run", Json::Num(f.run as f64)),
        ("error", Json::Str(f.error.to_string())),
    ])
}

/// Resolves an input name back to the catalog's `&'static str` for it, so
/// deserialized cells compare pointer-free against freshly measured ones.
pub fn resolve_input_name(name: &str) -> Option<&'static str> {
    undirected_catalog()
        .iter()
        .chain(directed_catalog())
        .map(|i| i.name())
        .find(|n| *n == name)
}

fn field_num(j: &Json, key: &str) -> Result<f64, String> {
    j.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("missing numeric field '{key}'"))
}

fn field_str<'a>(j: &'a Json, key: &str) -> Result<&'a str, String> {
    j.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing string field '{key}'"))
}

fn parse_cell_key(j: &Json) -> Result<(&'static str, Algorithm, &'static str), String> {
    let input = field_str(j, "input")?;
    let input = resolve_input_name(input).ok_or_else(|| format!("unknown input '{input}'"))?;
    let alg = field_str(j, "algorithm")?;
    let algorithm = Algorithm::parse(alg).ok_or_else(|| format!("unknown algorithm '{alg}'"))?;
    let gpu = field_str(j, "gpu")?;
    let gpu = GpuConfig::by_name(gpu)
        .map(|g| g.name)
        .ok_or_else(|| format!("unknown gpu '{gpu}'"))?;
    Ok((input, algorithm, gpu))
}

/// Inverse of [`cell_json`]. Input and GPU names are resolved back to the
/// catalogs' `&'static str`s; unknown names are an error (the journal came
/// from a different build).
pub fn parse_cell(j: &Json) -> Result<MeasuredCell, String> {
    let (input, algorithm, gpu) = parse_cell_key(j)?;
    let profile = |key: &str| -> Result<VariantProfile, String> {
        let p = j.get(key).ok_or_else(|| format!("missing '{key}'"))?;
        Ok(VariantProfile {
            l1_hit_rate: field_num(p, "l1_hit_rate")?,
            atomic_accesses: field_num(p, "atomic_accesses")? as u64,
            launches: field_num(p, "launches")? as u64,
        })
    };
    Ok(MeasuredCell {
        input,
        algorithm,
        gpu,
        baseline_cycles: field_num(j, "baseline_cycles")?,
        racefree_cycles: field_num(j, "racefree_cycles")?,
        speedup: field_num(j, "speedup")?,
        props: GraphProperties {
            num_vertices: field_num(j, "vertices")? as usize,
            num_edges: field_num(j, "edges")? as usize,
            avg_degree: field_num(j, "avg_degree")?,
            max_degree: field_num(j, "max_degree")? as usize,
            min_degree: field_num(j, "min_degree")? as usize,
        },
        baseline_profile: profile("baseline_profile")?,
        racefree_profile: profile("racefree_profile")?,
    })
}

/// Inverse of [`failure_json`]. The typed [`RunError`] was flattened to its
/// display string when serialized, so it comes back as
/// [`RunError::Remote`] — which displays as exactly that string, keeping
/// re-serialization stable.
pub fn parse_failure(j: &Json) -> Result<CellFailure, String> {
    let (input, algorithm, gpu) = parse_cell_key(j)?;
    Ok(CellFailure {
        input,
        algorithm,
        gpu,
        run: field_num(j, "run")? as usize,
        error: RunError::Remote(field_str(j, "error")?.to_string()),
    })
}

/// Reassembles a [`MeasuredTable`] from journaled cell bodies, in the
/// canonical order `keys` dictates (see `matrix::set_cell_keys`). This is
/// how an out-of-order executor — the farm fleet, a resumed sweep — emits a
/// report byte-identical to a serial in-process run: the bodies carry the
/// lossless cell serialization, and this function restores the ordering.
///
/// # Errors
///
/// A key with no record (the sweep is incomplete) or an unparsable body
/// (the records came from a different build) is an error.
pub fn table_from_records(
    records: &std::collections::HashMap<String, (bool, Json)>,
    keys: &[String],
) -> Result<MeasuredTable, String> {
    let mut table = MeasuredTable::default();
    for key in keys {
        let (ok, body) = records
            .get(key)
            .ok_or_else(|| format!("no record for cell '{key}' — the sweep is incomplete"))?;
        if *ok {
            table.cells.push(
                parse_cell(body).map_err(|e| format!("record for '{key}' is unusable: {e}"))?,
            );
        } else {
            table.failures.push(
                parse_failure(body)
                    .map_err(|e| format!("failure record for '{key}' is unusable: {e}"))?,
            );
        }
    }
    Ok(table)
}

fn profile_json(p: &crate::matrix::VariantProfile) -> Json {
    Json::obj(vec![
        ("l1_hit_rate", Json::Num(p.l1_hit_rate)),
        ("atomic_accesses", Json::Num(p.atomic_accesses as f64)),
        ("launches", Json::Num(p.launches as f64)),
    ])
}

/// Serializes a full per-launch [`RunStats`] profile (the detailed form;
/// measured cells embed only the aggregate [`crate::matrix::VariantProfile`]).
pub fn run_stats_json(stats: &RunStats) -> Json {
    Json::obj(vec![
        ("total_cycles", Json::Num(stats.total_cycles() as f64)),
        ("l1_hit_rate", Json::Num(stats.l1_hit_rate())),
        ("atomic_accesses", Json::Num(stats.atomic_accesses() as f64)),
        (
            "launches",
            Json::Arr(
                stats
                    .launches
                    .iter()
                    .map(|l| {
                        Json::obj(vec![
                            ("name", Json::Str(l.name.clone())),
                            ("cycles", Json::Num(l.cycles as f64)),
                            ("l1_hits", Json::Num(l.l1.hits as f64)),
                            ("l1_misses", Json::Num(l.l1.misses as f64)),
                            ("l2_hits", Json::Num(l.l2.hits as f64)),
                            ("l2_misses", Json::Num(l.l2.misses as f64)),
                            ("dram_accesses", Json::Num(l.dram_accesses as f64)),
                            ("plain_accesses", Json::Num(l.plain_accesses as f64)),
                            ("volatile_accesses", Json::Num(l.volatile_accesses as f64)),
                            ("atomic_accesses", Json::Num(l.atomic_accesses as f64)),
                            ("threads", Json::Num(l.threads as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trip() {
        let doc = Json::obj(vec![
            ("name", Json::Str("rmat16.sym \"quoted\"\n".into())),
            ("speedup", Json::Num(1.11)),
            ("count", Json::Num(3.0)),
            ("negative", Json::Num(-0.5)),
            ("big", Json::Num(1.0e21)),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
            (
                "list",
                Json::Arr(vec![Json::Num(1.0), Json::Str("π ≠ \\pi".into())]),
            ),
            ("empty_list", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).expect("parse back");
        assert_eq!(back, doc);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for v in [0.1, 1.0 / 3.0, 6.02e23, -1.25e-7, 0.0, 123456789.0] {
            let text = Json::Num(v).render();
            let back = Json::parse(&text).unwrap().as_num().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} round-trips");
        }
    }

    #[test]
    fn unicode_escapes_parse() {
        let v = Json::parse(r#""aéb😀c\td""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "aéb😀c\td");
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"abc",
            "{\"a\" 1}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn measured_cells_round_trip_losslessly() {
        // Resume rebuilds cells from journal bodies; if any field were
        // dropped or rounded, the resumed BENCH_RESULTS.json would differ
        // from the uninterrupted one. Use awkward floats on purpose.
        let cell = MeasuredCell {
            input: resolve_input_name("rmat16.sym").unwrap(),
            algorithm: Algorithm::Cc,
            gpu: GpuConfig::a100().name,
            baseline_cycles: 1.0 / 3.0,
            racefree_cycles: 6.02e23,
            speedup: 0.1 + 0.2,
            props: GraphProperties {
                num_vertices: 65536,
                num_edges: 1 << 20,
                avg_degree: 16.000000000000004,
                max_degree: 1234,
                min_degree: 1,
            },
            baseline_profile: VariantProfile {
                l1_hit_rate: 0.6412705003113971,
                atomic_accesses: 250,
                launches: 5,
            },
            racefree_profile: VariantProfile {
                l1_hit_rate: 0.4611485010051569,
                atomic_accesses: 48968,
                launches: 5,
            },
        };
        let j = cell_json(&cell);
        let text = j.render_compact();
        let back = parse_cell(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(cell_json(&back).render_compact(), text, "lossy round-trip");
        assert!(std::ptr::eq(back.input, cell.input), "static name resolved");
    }

    #[test]
    fn failures_round_trip_through_remote() {
        let f = CellFailure {
            input: resolve_input_name("cage14").unwrap(),
            algorithm: Algorithm::Scc,
            gpu: GpuConfig::test_tiny().name,
            run: 2,
            error: RunError::Remote("kernel 'sweep': watchdog timeout".into()),
        };
        let j = failure_json(&f);
        let back = parse_failure(&j).unwrap();
        // The error string survives verbatim, so re-serialization is stable.
        assert_eq!(failure_json(&back), j);
        assert_eq!(back.run, 2);
    }

    #[test]
    fn compact_and_pretty_renderings_parse_to_the_same_tree() {
        let doc = Json::obj(vec![
            ("a", Json::Num(0.1)),
            ("b", Json::Arr(vec![Json::Null, Json::Str("x\n".into())])),
            ("c", Json::Obj(vec![])),
        ]);
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
        assert_eq!(Json::parse(&doc.render_compact()).unwrap(), doc);
        assert!(!doc.render_compact().contains('\n'));
    }

    #[test]
    fn run_stats_serialize() {
        let mut stats = RunStats::default();
        stats.launches.push(ecl_simt::KernelStats {
            name: "init".into(),
            cycles: 42,
            ..Default::default()
        });
        let j = run_stats_json(&stats);
        assert_eq!(j.get("total_cycles").and_then(Json::as_num), Some(42.0));
        assert_eq!(j.get("launches").and_then(Json::as_arr).unwrap().len(), 1);
    }
}
