//! Statistics used by the paper's reporting: medians (§V-B), geometric
//! means (Tables IV–VIII summary rows, Fig. 6), and Pearson correlation
//! coefficients (Table IX).

/// The median of a sample (average of the two central elements for even
/// sizes).
///
/// # Panics
///
/// Panics on an empty sample.
pub fn median(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "median of an empty sample");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// The geometric mean of a sample of positive values.
///
/// # Panics
///
/// Panics on an empty sample or non-positive values.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of an empty sample");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean needs positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Pearson correlation coefficient between two equal-length samples.
/// Returns 0 when either sample has zero variance.
///
/// # Panics
///
/// Panics if the samples have different lengths or fewer than 2 points.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "samples must pair up");
    assert!(xs.len() >= 2, "correlation needs at least two points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        cov / (vx * vy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[7.0]), 7.0);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        let _ = geomean(&[1.0, 0.0]);
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let up = [2.0, 4.0, 6.0, 8.0];
        let down = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &up) - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &down) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_zero_variance_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }
}
