//! A vector-clock happens-before detector (FastTrack-style).
//!
//! The epoch detector in [`crate::detect`] treats every pair of same-launch
//! accesses from different blocks as concurrent. That is exact for the ECL
//! codes, whose atomics are all *relaxed* — relaxed atomics are coherent but
//! establish no ordering. Codes that synchronize with **release/acquire**
//! atomics, however, do order their surrounding plain accesses, and only a
//! happens-before analysis can tell such flag-protected accesses apart from
//! true races.
//!
//! This detector tracks a sparse vector clock per thread, joins clocks
//! across release-write → acquire-read edges on each atomic location, and
//! reports a conflict only when neither access happens-before the other.
//! It is the simulator's analogue of ThreadSanitizer, complementing the
//! Compute-Sanitizer-style epoch detector.

use crate::report::{RaceClass, RaceReport, RaceSite};
use ecl_simt::{AccessKind, AccessMode, Gpu, MemOrder, Space};
use std::collections::HashMap;

/// A sparse vector clock: thread id → last-known epoch of that thread.
#[derive(Debug, Clone, Default)]
struct VectorClock(HashMap<u32, u64>);

impl VectorClock {
    #[inline]
    fn get(&self, thread: u32) -> u64 {
        self.0.get(&thread).copied().unwrap_or(0)
    }

    fn join(&mut self, other: &VectorClock) {
        for (&t, &c) in &other.0 {
            let e = self.0.entry(t).or_insert(0);
            if *e < c {
                *e = c;
            }
        }
    }

    fn set(&mut self, thread: u32, clock: u64) {
        self.0.insert(thread, clock);
    }
}

/// One remembered access for conflict checking.
#[derive(Debug, Clone, Copy)]
struct HbRec {
    thread: u32,
    clock: u64,
    launch: u32,
    block: u32,
    phase: u32,
    mode: AccessMode,
    kind: AccessKind,
}

/// Bound on remembered accesses per byte, as in the epoch detector.
const RECS_PER_BYTE: usize = 64;

/// Runs happens-before race detection over the GPU's recorded trace.
///
/// Because the simulator is serial, the trace is a linearization of the
/// execution, and happens-before is computed along it: inter-launch
/// barriers, same-block barrier phases, and release→acquire atomic chains
/// all order accesses; everything else conflicts as usual.
///
/// # Panics
///
/// Panics if tracing was not enabled on the GPU.
pub fn check_races_hb(gpu: &Gpu) -> Vec<RaceReport> {
    let trace = gpu
        .trace()
        .expect("race checking needs a trace: call Gpu::enable_tracing() before launching");

    let mut thread_clock: HashMap<u32, u64> = HashMap::new();
    let mut thread_vc: HashMap<u32, VectorClock> = HashMap::new();
    // Per-atomic-location release clock (word granularity: sync variables
    // are accessed with consistent widths).
    let mut release_vc: HashMap<u32, VectorClock> = HashMap::new();
    // Per-byte access history, per launch (inter-launch is always ordered,
    // so locations reset across launches).
    let mut locations: HashMap<(Space, u32, u32, u32), Vec<HbRec>> = HashMap::new();
    let mut reports: HashMap<(String, Space, u32, RaceClass), RaceReport> = HashMap::new();

    for e in trace.events() {
        let clock = {
            let c = thread_clock.entry(e.thread).or_insert(0);
            *c += 1;
            *c
        };

        // Acquire side: an acquiring atomic read joins the location's
        // release clock into this thread's clock.
        if e.mode == AccessMode::Atomic
            && e.kind.reads()
            && matches!(
                e.order,
                MemOrder::Acquire | MemOrder::AcqRel | MemOrder::SeqCst
            )
        {
            if let Some(rel) = release_vc.get(&e.addr) {
                let rel = rel.clone();
                thread_vc.entry(e.thread).or_default().join(&rel);
            }
        }

        // Conflict check against remembered accesses.
        let vc = thread_vc.entry(e.thread).or_default().clone();
        for byte in e.addr..e.addr + e.width {
            let block_key = if e.space == Space::Shared { e.block } else { 0 };
            let key = (e.space, byte, block_key, e.launch);
            let recs = locations.entry(key).or_default();
            for prev in recs.iter() {
                if !conflicts_hb(prev, e, &vc) {
                    continue;
                }
                let class = RaceReport::classify((prev.mode, prev.kind), (e.mode, e.kind));
                let kernel = trace
                    .kernel_name(e.launch)
                    .unwrap_or("<unknown>")
                    .to_string();
                let (allocation, allocation_name) = match e.space {
                    Space::Global => (
                        gpu.memory()
                            .allocation_of(byte)
                            .map(|(b, _)| b)
                            .unwrap_or(byte),
                        gpu.memory().allocation_name(byte).map(str::to_string),
                    ),
                    Space::Shared => (byte, None),
                };
                reports
                    .entry((kernel.clone(), e.space, allocation, class))
                    .and_modify(|r| r.occurrences += 1)
                    .or_insert_with(|| RaceReport {
                        kernel,
                        space: e.space,
                        allocation,
                        allocation_name,
                        example_addr: byte,
                        class,
                        first: RaceSite {
                            thread: prev.thread,
                            mode: prev.mode,
                            kind: prev.kind,
                        },
                        second: RaceSite {
                            thread: e.thread,
                            mode: e.mode,
                            kind: e.kind,
                        },
                        occurrences: 1,
                    });
                break;
            }
            let rec = HbRec {
                thread: e.thread,
                clock,
                launch: e.launch,
                block: e.block,
                phase: e.phase,
                mode: e.mode,
                kind: e.kind,
            };
            if recs.len() < RECS_PER_BYTE {
                recs.push(rec);
            }
        }

        // Release side: a releasing atomic write publishes this thread's
        // history (its VC plus its own epoch) on the location.
        if e.mode == AccessMode::Atomic
            && e.kind.writes()
            && matches!(
                e.order,
                MemOrder::Release | MemOrder::AcqRel | MemOrder::SeqCst
            )
        {
            let mut published = thread_vc.entry(e.thread).or_default().clone();
            published.set(e.thread, clock);
            release_vc.entry(e.addr).or_default().join(&published);
        }
    }

    let mut out: Vec<RaceReport> = reports.into_values().collect();
    out.sort_by(|a, b| {
        (&a.kernel, a.allocation, a.example_addr).cmp(&(&b.kernel, b.allocation, b.example_addr))
    });
    out
}

/// `prev` and the current event conflict and are not happens-before ordered.
fn conflicts_hb(prev: &HbRec, e: &ecl_simt::AccessEvent, current_vc: &VectorClock) -> bool {
    if prev.thread == e.thread {
        return false;
    }
    if !(prev.kind.writes() || e.kind.writes()) {
        return false;
    }
    if prev.mode == AccessMode::Atomic && e.mode == AccessMode::Atomic {
        return false;
    }
    debug_assert_eq!(prev.launch, e.launch, "locations are per-launch");
    // Barrier ordering within a block.
    if prev.block == e.block && prev.phase != e.phase {
        return false;
    }
    // Release/acquire ordering: prev happens-before e iff e's thread has
    // observed prev's epoch; otherwise the pair is concurrent.
    current_vc.get(prev.thread) < prev.clock
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_races;
    use ecl_simt::{
        Ctx, DeviceBuffer, ForEach, GpuConfig, Kernel, LaunchConfig, Scope, Step, StoreVisibility,
        ThreadInfo,
    };

    /// Producer writes data plainly, then release-stores a flag; consumer
    /// acquire-polls the flag, then reads the data plainly. Properly
    /// synchronized — but only the HB detector can tell.
    struct FlagSync {
        data: DeviceBuffer<u32>,
        flag: DeviceBuffer<u32>,
        order: MemOrder,
    }

    impl Kernel for FlagSync {
        type State = u32;

        fn name(&self) -> &str {
            "flag_sync"
        }

        fn init(&self, info: ThreadInfo) -> u32 {
            info.global_id
        }

        fn step(&self, tid: &mut u32, ctx: &mut Ctx<'_>) -> Step {
            if *tid == 0 {
                ctx.store(self.data.at(0), 42);
                let store_order = match self.order {
                    MemOrder::Relaxed => MemOrder::Relaxed,
                    _ => MemOrder::Release,
                };
                ctx.atomic_store_explicit(self.flag.at(0), 1u32, store_order, Scope::Device);
                Step::Done
            } else {
                let load_order = match self.order {
                    MemOrder::Relaxed => MemOrder::Relaxed,
                    _ => MemOrder::Acquire,
                };
                if ctx.atomic_load_explicit(self.flag.at(0), load_order, Scope::Device) == 0 {
                    return Step::Yield; // keep polling
                }
                let v = ctx.load(self.data.at(0));
                assert_eq!(v, 42);
                Step::Done
            }
        }
    }

    fn run_flag_sync(order: MemOrder) -> Gpu {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        gpu.enable_tracing();
        let data = gpu.alloc::<u32>(1);
        let flag = gpu.alloc::<u32>(1);
        gpu.launch(
            LaunchConfig {
                grid_blocks: 2,
                block_threads: 1,
                store_visibility: StoreVisibility::Immediate,
                shared_bytes: 0,
                exact_geometry: true,
            },
            FlagSync { data, flag, order },
        );
        gpu
    }

    #[test]
    fn release_acquire_protects_plain_data() {
        let gpu = run_flag_sync(MemOrder::Release);
        // The epoch detector cannot see the synchronization: false positive.
        assert!(!check_races(&gpu).is_empty(), "epoch detector over-reports");
        // The HB detector sees the release→acquire edge: clean.
        let hb = check_races_hb(&gpu);
        assert!(
            hb.is_empty(),
            "HB detector must accept flag-protected data: {hb:?}"
        );
    }

    #[test]
    fn relaxed_flag_does_not_synchronize() {
        // With relaxed ordering on the flag, the plain data accesses remain
        // a race under BOTH detectors — the CUDA-memory-model point that
        // relaxed atomics are coherent but do not order anything.
        let gpu = run_flag_sync(MemOrder::Relaxed);
        assert!(!check_races(&gpu).is_empty());
        assert!(!check_races_hb(&gpu).is_empty());
    }

    #[test]
    fn plain_race_detected_same_as_epoch_detector() {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        gpu.enable_tracing();
        let cell = gpu.alloc::<u32>(1);
        gpu.launch(
            LaunchConfig::for_items(32),
            ForEach::new("racy", 32, move |ctx, _| {
                let v = ctx.load(cell.at(0));
                ctx.store(cell.at(0), v + 1);
            }),
        );
        assert!(!check_races_hb(&gpu).is_empty());
    }

    #[test]
    fn launch_boundary_still_orders() {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        gpu.enable_tracing();
        let cell = gpu.alloc::<u32>(64);
        gpu.launch(
            LaunchConfig::for_items(64),
            ForEach::new("w", 64, move |ctx, i| ctx.store(cell.at(i as usize), i)),
        );
        gpu.launch(
            LaunchConfig::for_items(64),
            ForEach::new("r", 64, move |ctx, i| {
                let _ = ctx.load(cell.at(((i + 1) % 64) as usize));
            }),
        );
        assert!(check_races_hb(&gpu).is_empty());
    }

    #[test]
    fn all_atomic_accesses_never_race() {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        gpu.enable_tracing();
        let cell = gpu.alloc::<u32>(1);
        gpu.launch(
            LaunchConfig::for_items(64),
            ForEach::new("atomics", 64, move |ctx, _| {
                ctx.atomic_add_u32(cell.at(0), 1);
            }),
        );
        assert!(check_races_hb(&gpu).is_empty());
    }
}
