//! Per-allocation access profiling — the data behind the paper's §VI-C
//! observation that "the execution frequency of the affected code section
//! plays an important role in determining the performance impact".
//!
//! Given a traced run, [`access_profile`] counts how often each named
//! allocation was touched with each access mode, so one can see at a glance
//! which shared arrays dominate a code's traffic (e.g. CC's `label` array)
//! and therefore how much a race-free conversion of that array will cost.

use ecl_simt::{AccessMode, Gpu};
use std::collections::BTreeMap;

/// Access counts for one allocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocationProfile {
    /// Plain loads + stores.
    pub plain: u64,
    /// Volatile loads + stores.
    pub volatile_accesses: u64,
    /// Atomic loads, stores, and RMWs.
    pub atomic: u64,
}

impl AllocationProfile {
    /// All accesses of any mode.
    pub fn total(&self) -> u64 {
        self.plain + self.volatile_accesses + self.atomic
    }

    /// The fraction of this allocation's accesses that are racy (non-atomic).
    pub fn racy_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.plain + self.volatile_accesses) as f64 / total as f64
        }
    }
}

/// Aggregates the traced global-memory accesses per named allocation.
/// Unnamed allocations are grouped under their base address rendered as
/// hex.
///
/// # Panics
///
/// Panics if tracing was not enabled on the GPU.
pub fn access_profile(gpu: &Gpu) -> BTreeMap<String, AllocationProfile> {
    let trace = gpu
        .trace()
        .expect("profiling needs a trace: call Gpu::enable_tracing() before launching");
    let mut out: BTreeMap<String, AllocationProfile> = BTreeMap::new();
    for e in trace.events() {
        if e.space != ecl_simt::Space::Global {
            continue;
        }
        let name = match gpu.memory().allocation_name(e.addr) {
            Some(n) => n.to_string(),
            None => match gpu.memory().allocation_of(e.addr) {
                Some((base, _)) => format!("{base:#x}"),
                None => "<unknown>".to_string(),
            },
        };
        let entry = out.entry(name).or_default();
        match e.mode {
            AccessMode::Plain => entry.plain += 1,
            AccessMode::Volatile => entry.volatile_accesses += 1,
            AccessMode::Atomic => entry.atomic += 1,
        }
    }
    out
}

/// Renders a profile as an aligned table, busiest allocation first.
pub fn format_profile(profile: &BTreeMap<String, AllocationProfile>) -> String {
    let mut rows: Vec<(&String, &AllocationProfile)> = profile.iter().collect();
    rows.sort_by_key(|(_, p)| std::cmp::Reverse(p.total()));
    let mut out = format!(
        "{:<16} {:>10} {:>10} {:>10} {:>8}\n",
        "allocation", "plain", "volatile", "atomic", "racy%"
    );
    for (name, p) in rows {
        out.push_str(&format!(
            "{:<16} {:>10} {:>10} {:>10} {:>7.1}%\n",
            name,
            p.plain,
            p.volatile_accesses,
            p.atomic,
            100.0 * p.racy_fraction()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_simt::{ForEach, GpuConfig, LaunchConfig};

    #[test]
    fn profiles_by_allocation_and_mode() {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        gpu.enable_tracing();
        let named = gpu.alloc_named::<u32>(64, "labels");
        let anon = gpu.alloc::<u32>(64);
        gpu.launch(
            LaunchConfig::for_items(64),
            ForEach::new("mix", 64, move |ctx, i| {
                let v = ctx.load(named.at(i as usize)); // plain
                ctx.atomic_store(named.at(i as usize), v + 1); // atomic
                ctx.store_volatile(anon.at(i as usize), v); // volatile
            }),
        );
        let profile = access_profile(&gpu);
        let labels = profile.get("labels").expect("named allocation profiled");
        assert_eq!(labels.plain, 64);
        assert_eq!(labels.atomic, 64);
        assert_eq!(labels.volatile_accesses, 0);
        assert!((labels.racy_fraction() - 0.5).abs() < 1e-12);
        // The anonymous buffer appears under its hex base.
        let anon_profile = profile
            .iter()
            .find(|(k, _)| k.starts_with("0x"))
            .expect("anon allocation profiled");
        assert_eq!(anon_profile.1.volatile_accesses, 64);

        let text = format_profile(&profile);
        assert!(text.contains("labels"));
        assert!(text.contains("50.0%"));
    }

    #[test]
    #[should_panic(expected = "enable_tracing")]
    fn untraced_profile_panics() {
        let gpu = Gpu::new(GpuConfig::test_tiny());
        let _ = access_profile(&gpu);
    }
}
