//! Dynamic data-race detection over `ecl-simt` access traces.
//!
//! The paper identifies the races in the baseline ECL codes with a
//! combination of NVIDIA Compute Sanitizer, iGuard, and manual inspection
//! (§IV). This crate plays the same role for the simulator: it consumes the
//! [`ecl_simt::Trace`] recorded during a run and reports every pair of
//! conflicting accesses.
//!
//! Two accesses *conflict* when they touch overlapping bytes, come from
//! different threads, at least one writes, and they are not both atomic.
//! Two conflicting accesses *race* when nothing orders them:
//!
//! - accesses in different kernel launches are ordered (the implicit barrier
//!   between launches);
//! - accesses in the same block separated by a `__syncthreads` barrier phase
//!   are ordered;
//! - everything else concurrent within one launch races.
//!
//! [`DetectorMode`] reproduces the blind spots of the real tools the paper
//! discusses: Compute Sanitizer's racecheck only examines shared memory, and
//! iGuard misses the implicit inter-launch barrier (false positives).
//!
//! # Example
//!
//! ```
//! use ecl_simt::{ForEach, Gpu, GpuConfig, LaunchConfig};
//! use ecl_racecheck::check_races;
//!
//! let mut gpu = Gpu::new(GpuConfig::test_tiny());
//! gpu.enable_tracing();
//! let shared = gpu.alloc::<u32>(1);
//! gpu.launch(
//!     LaunchConfig::for_items(64),
//!     ForEach::new("racy-increment", 64, move |ctx, _| {
//!         let v = ctx.load(shared.at(0));      // plain read
//!         ctx.store(shared.at(0), v + 1);      // plain write: races!
//!     }),
//! );
//! let report = check_races(&gpu);
//! assert!(!report.is_empty());
//! ```

mod detect;
mod hb;
mod profile;
mod report;

pub use detect::{
    check_races, check_races_bounded, check_races_with_mode, BoundedDetection, BoundedFinding,
    ConflictPair, DetectorMode,
};
pub use hb::check_races_hb;
pub use profile::{access_profile, format_profile, AllocationProfile};
pub use report::{format_summary, RaceClass, RaceReport, RaceSite};
