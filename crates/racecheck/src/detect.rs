//! The detection engine.

use crate::report::{RaceClass, RaceReport, RaceSite};
use ecl_simt::{AccessKind, AccessMode, Gpu, Scope, Space};
use std::collections::HashMap;

/// Which tool the detector imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorMode {
    /// Full-precision detection: global and shared memory, aware of the
    /// implicit barrier between kernel launches and of block barriers.
    Precise,
    /// Compute-Sanitizer-like: only *shared-memory* races are examined
    /// (the paper notes "Compute Sanitizer does not check for races in
    /// global memory"), so the ECL codes' global-array races go unreported.
    SharedOnly,
    /// iGuard-like: ignores the implicit barrier between kernel launches
    /// (the paper: "iGuard seems to ignore the implicit barrier between
    /// kernel launches, causing false positive reports").
    NoLaunchBarrier,
}

/// One remembered access to a byte location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AccessRec {
    launch: u32,
    thread: u32,
    block: u32,
    phase: u32,
    mode: AccessMode,
    kind: AccessKind,
    scope: Scope,
}

/// Cap on distinct remembered accesses per byte; once two accesses conflict
/// the location is fully reported, so the cap only bounds memory on hot
/// non-conflicting locations (e.g. all-atomic counters).
const RECS_PER_BYTE: usize = 64;

/// One retained conflicting access pair (bounded mode keeps up to a caller
/// cap of these per finding instead of a single example).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictPair {
    /// The byte address the two accesses collided on.
    pub addr: u32,
    /// One side of the pair.
    pub first: RaceSite,
    /// The other side.
    pub second: RaceSite,
}

/// One deduplicated finding with its retained pair evidence.
#[derive(Debug, Clone)]
pub struct BoundedFinding {
    /// The deduplicated report (identical to unbounded detection's).
    pub report: RaceReport,
    /// Up to `max_pairs` distinct conflicting pairs, in discovery order.
    pub pairs: Vec<ConflictPair>,
    /// Conflicting pairs observed beyond the cap and not retained. Non-zero
    /// means `pairs` is a prefix, not the full evidence set.
    pub dropped: u64,
}

impl BoundedFinding {
    /// `true` when the pair cap cut evidence off.
    pub fn truncated(&self) -> bool {
        self.dropped > 0
    }
}

/// Result of [`check_races_bounded`]: deduplicated findings with per-buffer
/// pair evidence retained up to a fixed cap — detection whose memory use is
/// `O(findings × max_pairs)` regardless of how racy the trace is.
#[derive(Debug, Clone, Default)]
pub struct BoundedDetection {
    /// All findings, sorted like [`check_races`]'s output.
    pub findings: Vec<BoundedFinding>,
}

impl BoundedDetection {
    /// The findings whose evidence was cut off by the cap — the typed
    /// truncation marker tools export.
    pub fn truncated(&self) -> Vec<&BoundedFinding> {
        self.findings.iter().filter(|f| f.truncated()).collect()
    }

    /// The plain reports, for callers that do not need pair evidence.
    pub fn reports(&self) -> Vec<RaceReport> {
        self.findings.iter().map(|f| f.report.clone()).collect()
    }
}

/// Runs [`DetectorMode::Precise`] detection over the GPU's recorded trace.
///
/// # Panics
///
/// Panics if tracing was not enabled on the GPU before the kernels ran
/// (call [`Gpu::enable_tracing`] first).
pub fn check_races(gpu: &Gpu) -> Vec<RaceReport> {
    check_races_with_mode(gpu, DetectorMode::Precise)
}

/// Runs race detection in the given mode. See [`check_races`].
///
/// # Panics
///
/// Panics if tracing was not enabled on the GPU.
pub fn check_races_with_mode(gpu: &Gpu, mode: DetectorMode) -> Vec<RaceReport> {
    detect(gpu, mode, 1)
        .findings
        .into_iter()
        .map(|f| f.report)
        .collect()
}

/// Bounded-memory detection: like [`check_races_with_mode`] but retaining up
/// to `max_pairs` distinct conflicting pairs per finding as evidence, with a
/// typed per-finding `dropped` count once the cap cuts off. `max_pairs` of 0
/// is treated as 1 (a finding with no example pair is useless).
///
/// # Panics
///
/// Panics if tracing was not enabled on the GPU.
pub fn check_races_bounded(gpu: &Gpu, mode: DetectorMode, max_pairs: usize) -> BoundedDetection {
    detect(gpu, mode, max_pairs.max(1))
}

fn detect(gpu: &Gpu, mode: DetectorMode, max_pairs: usize) -> BoundedDetection {
    let trace = gpu
        .trace()
        .expect("race checking needs a trace: call Gpu::enable_tracing() before launching");

    // Per-byte location state. Shared-memory offsets are block-local, so the
    // block index is part of a shared location's identity.
    type LocKey = (Space, u32, u32, u32); // (space, byte, block-or-0, launch-or-0)
    let mut locations: HashMap<LocKey, Vec<AccessRec>> = HashMap::new();
    // Deduplicated findings, each with up to `max_pairs` retained pairs.
    let mut reports: HashMap<(String, Space, u32, RaceClass), BoundedFinding> = HashMap::new();

    for e in trace.events() {
        if mode == DetectorMode::SharedOnly && e.space != Space::Global {
            // fallthrough: SharedOnly *keeps* shared events; skip global.
        }
        if mode == DetectorMode::SharedOnly && e.space == Space::Global {
            continue;
        }
        let launch_key = match mode {
            // Treating every launch as one epoch merges locations across
            // launches, which is exactly iGuard's false-positive behavior.
            DetectorMode::NoLaunchBarrier => 0,
            _ => e.launch,
        };
        let rec = AccessRec {
            launch: e.launch,
            thread: e.thread,
            block: e.block,
            phase: e.phase,
            mode: e.mode,
            kind: e.kind,
            scope: e.scope,
        };
        for byte in e.addr..e.addr + e.width {
            let block_key = if e.space == Space::Shared { e.block } else { 0 };
            let key = (e.space, byte, block_key, launch_key);
            let recs = locations.entry(key).or_default();
            for prev in recs.iter() {
                if conflicts(prev, &rec) {
                    let class = RaceReport::classify((prev.mode, prev.kind), (rec.mode, rec.kind));
                    let kernel = trace
                        .kernel_name(e.launch)
                        .unwrap_or("<unknown>")
                        .to_string();
                    let (allocation, allocation_name) = match e.space {
                        Space::Global => (
                            gpu.memory()
                                .allocation_of(byte)
                                .map(|(base, _)| base)
                                .unwrap_or(byte),
                            gpu.memory().allocation_name(byte).map(str::to_string),
                        ),
                        Space::Shared => (byte, None),
                    };
                    let pair = ConflictPair {
                        addr: byte,
                        first: RaceSite {
                            thread: prev.thread,
                            mode: prev.mode,
                            kind: prev.kind,
                        },
                        second: RaceSite {
                            thread: rec.thread,
                            mode: rec.mode,
                            kind: rec.kind,
                        },
                    };
                    reports
                        .entry((kernel.clone(), e.space, allocation, class))
                        .and_modify(|f| {
                            f.report.occurrences += 1;
                            if f.pairs.contains(&pair) {
                                // Already retained: nothing new to keep or drop.
                            } else if f.pairs.len() < max_pairs {
                                f.pairs.push(pair.clone());
                            } else {
                                f.dropped += 1;
                            }
                        })
                        .or_insert_with(|| BoundedFinding {
                            report: RaceReport {
                                kernel,
                                space: e.space,
                                allocation,
                                allocation_name,
                                example_addr: byte,
                                class,
                                first: pair.first,
                                second: pair.second,
                                occurrences: 1,
                            },
                            pairs: vec![pair],
                            dropped: 0,
                        });
                    break;
                }
            }
            if recs.len() < RECS_PER_BYTE && !recs.contains(&rec) {
                recs.push(rec);
            }
        }
    }

    let mut findings: Vec<BoundedFinding> = reports.into_values().collect();
    findings.sort_by(|a, b| {
        (&a.report.kernel, a.report.allocation, a.report.example_addr).cmp(&(
            &b.report.kernel,
            b.report.allocation,
            b.report.example_addr,
        ))
    });
    BoundedDetection { findings }
}

/// Two accesses to the same byte conflict and are unordered.
fn conflicts(a: &AccessRec, b: &AccessRec) -> bool {
    if a.thread == b.thread {
        return false;
    }
    if !(a.kind.writes() || b.kind.writes()) {
        return false;
    }
    if a.mode == AccessMode::Atomic && b.mode == AccessMode::Atomic {
        // Two atomics only synchronize when their scopes cover each other:
        // block-scoped atomics from *different* blocks still race (the
        // paper's §II-A scope discussion).
        let block_scoped = a.scope == Scope::Block || b.scope == Scope::Block;
        if !(block_scoped && a.block != b.block) {
            return false;
        }
    }
    if a.launch != b.launch {
        // Only reachable in NoLaunchBarrier mode (keys separate launches
        // otherwise); the inter-launch barrier is deliberately ignored there.
        return true;
    }
    // Same launch: different blocks never synchronize; same block is ordered
    // only across barrier phases.
    a.block != b.block || a.phase == b.phase
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_simt::{ForEach, GpuConfig, LaunchConfig};

    fn racy_gpu() -> Gpu {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        gpu.enable_tracing();
        let cell = gpu.alloc::<u32>(1);
        gpu.launch(
            LaunchConfig::for_items(32),
            ForEach::new("racy", 32, move |ctx, _| {
                let v = ctx.load(cell.at(0));
                ctx.store(cell.at(0), v + 1);
            }),
        );
        gpu
    }

    #[test]
    fn detects_plain_race() {
        let reports = check_races(&racy_gpu());
        assert!(!reports.is_empty());
        assert!(reports.iter().any(|r| r.kernel == "racy"));
    }

    #[test]
    fn atomic_version_is_clean() {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        gpu.enable_tracing();
        let cell = gpu.alloc::<u32>(1);
        gpu.launch(
            LaunchConfig::for_items(32),
            ForEach::new("clean", 32, move |ctx, _| {
                ctx.atomic_add_u32(cell.at(0), 1);
            }),
        );
        assert!(check_races(&gpu).is_empty());
    }

    #[test]
    fn volatile_is_still_a_race() {
        // The paper's central point: volatile does not make code race-free.
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        gpu.enable_tracing();
        let cell = gpu.alloc::<u32>(1);
        gpu.launch(
            LaunchConfig::for_items(32),
            ForEach::new("volatile-racy", 32, move |ctx, i| {
                if i % 2 == 0 {
                    ctx.store_volatile(cell.at(0), i);
                } else {
                    let _ = ctx.load_volatile(cell.at(0));
                }
            }),
        );
        let reports = check_races(&gpu);
        assert!(!reports.is_empty());
    }

    #[test]
    fn mixed_atomic_nonatomic_is_a_race() {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        gpu.enable_tracing();
        let cell = gpu.alloc::<u32>(1);
        gpu.launch(
            LaunchConfig::for_items(32),
            ForEach::new("mixed", 32, move |ctx, i| {
                if i % 2 == 0 {
                    ctx.atomic_add_u32(cell.at(0), 1);
                } else {
                    let _ = ctx.load(cell.at(0));
                }
            }),
        );
        let reports = check_races(&gpu);
        assert!(reports.iter().any(|r| r.class == RaceClass::MixedAtomic));
    }

    #[test]
    fn disjoint_bytes_do_not_conflict() {
        // Two threads writing different chars inside the same word: no race.
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        gpu.enable_tracing();
        let bytes = gpu.alloc::<u8>(64);
        gpu.launch(
            LaunchConfig::for_items(64),
            ForEach::new("disjoint", 64, move |ctx, i| {
                ctx.store(bytes.at(i as usize), i as u8);
            }),
        );
        assert!(check_races(&gpu).is_empty());
    }

    #[test]
    fn sub_word_overlap_is_detected() {
        // A full-word store vs a one-byte store into the middle of the same
        // word: the accesses have different widths and different base
        // addresses, but overlap on exactly one byte — which is where the
        // detector's per-byte location model must catch them.
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        gpu.enable_tracing();
        let words = gpu.alloc::<u32>(2);
        gpu.launch(
            LaunchConfig::for_items(2),
            ForEach::new("subword", 2, move |ctx, i| {
                if i == 0 {
                    ctx.store(words.at(0), 0xdead_beef);
                } else {
                    ctx.store(words.at(0).cast::<u8>().offset(2), 7u8);
                }
            }),
        );
        let reports = check_races(&gpu);
        assert_eq!(reports.len(), 1, "{reports:?}");
        assert_eq!(reports[0].class, RaceClass::WriteWrite);
    }

    #[test]
    fn atomic_word_vs_plain_byte_in_same_word_is_mixed() {
        // An atomic CAS covers all four bytes of its word: a *plain* byte
        // store inside that word races with it even though their base
        // addresses differ.
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        gpu.enable_tracing();
        let word = gpu.alloc::<u32>(1);
        gpu.launch(
            LaunchConfig::for_items(2),
            ForEach::new("cas_vs_byte", 2, move |ctx, i| {
                if i == 0 {
                    ctx.atomic_cas_u32(word.at(0), 0, 1);
                } else {
                    ctx.store(word.at(0).cast::<u8>().offset(1), 3u8);
                }
            }),
        );
        let reports = check_races(&gpu);
        assert_eq!(reports.len(), 1, "{reports:?}");
        assert_eq!(reports[0].class, RaceClass::MixedAtomic);
    }

    #[test]
    fn shared_only_mode_catches_shared_but_misses_global() {
        // One kernel races in BOTH spaces; the Compute-Sanitizer-style mode
        // reports the shared-memory race and is blind to the global one.
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        gpu.enable_tracing();
        let cell = gpu.alloc::<u32>(1);
        gpu.launch(
            LaunchConfig::for_items(8).with_shared_bytes(4),
            ForEach::new("both_spaces", 8, move |ctx, i| {
                ctx.shared_write::<u32>(0, i);
                ctx.store(cell.at(0), i);
            }),
        );
        let precise = check_races(&gpu);
        assert!(precise.iter().any(|r| r.space == Space::Shared));
        assert!(precise.iter().any(|r| r.space == Space::Global));
        let shared_only = check_races_with_mode(&gpu, DetectorMode::SharedOnly);
        assert!(!shared_only.is_empty(), "the shared race must be reported");
        assert!(
            shared_only.iter().all(|r| r.space == Space::Shared),
            "SharedOnly must not report global findings: {shared_only:?}"
        );
    }

    #[test]
    fn launch_boundary_orders_accesses() {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        gpu.enable_tracing();
        let cell = gpu.alloc::<u32>(64);
        // Writer kernel then reader kernel: ordered by the implicit barrier.
        gpu.launch(
            LaunchConfig::for_items(64),
            ForEach::new("writer", 64, move |ctx, i| {
                ctx.store(cell.at(i as usize), i)
            }),
        );
        gpu.launch(
            LaunchConfig::for_items(64),
            ForEach::new("reader", 64, move |ctx, i| {
                // Read a different element than this thread wrote.
                let _ = ctx.load(cell.at(((i + 1) % 64) as usize));
            }),
        );
        assert!(check_races(&gpu).is_empty());
        // iGuard-mode ignores the launch barrier and reports false positives.
        let fp = check_races_with_mode(&gpu, DetectorMode::NoLaunchBarrier);
        assert!(!fp.is_empty());
    }

    #[test]
    fn shared_only_mode_misses_global_races() {
        // Compute-Sanitizer-mode sees nothing: the race is in global memory.
        let gpu = racy_gpu();
        assert!(check_races_with_mode(&gpu, DetectorMode::SharedOnly).is_empty());
        assert!(!check_races(&gpu).is_empty());
    }

    #[test]
    fn block_scoped_atomics_race_across_blocks() {
        use ecl_simt::{MemOrder, Scope as ThreadScope, StoreVisibility};
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        gpu.enable_tracing();
        let cell = gpu.alloc::<u32>(1);
        // 4 blocks of 8 threads, all hammering one counter with
        // *block-scoped* atomics: atomic within a block, racy across blocks.
        gpu.launch(
            ecl_simt::LaunchConfig {
                grid_blocks: 4,
                block_threads: 8,
                store_visibility: StoreVisibility::Immediate,
                shared_bytes: 0,
                exact_geometry: true,
            },
            ecl_simt::ForEach::new("blockscope", 32, move |ctx, _| {
                ctx.atomic_rmw_explicit(cell.at(0), MemOrder::Relaxed, ThreadScope::Block, |v| {
                    v + 1
                });
            }),
        );
        let reports = check_races(&gpu);
        assert!(
            !reports.is_empty(),
            "block-scoped atomics from different blocks must race"
        );
        // Both sides are atomic: the finding is a scope failure, not a
        // mixed atomic/non-atomic race.
        assert!(
            reports.iter().all(|r| r.class == RaceClass::ScopedAtomic),
            "cross-block block-scoped atomic pairs must classify as \
             scoped-atomic: {reports:?}"
        );
    }

    #[test]
    fn device_scoped_atomics_do_not_race_across_blocks() {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        gpu.enable_tracing();
        let cell = gpu.alloc::<u32>(1);
        gpu.launch(
            ecl_simt::LaunchConfig {
                grid_blocks: 4,
                block_threads: 8,
                store_visibility: ecl_simt::StoreVisibility::Immediate,
                shared_bytes: 0,
                exact_geometry: true,
            },
            ecl_simt::ForEach::new("devscope", 32, move |ctx, _| {
                ctx.atomic_add_u32(cell.at(0), 1);
            }),
        );
        assert!(check_races(&gpu).is_empty());
    }

    #[test]
    fn occurrences_are_aggregated() {
        let reports = check_races(&racy_gpu());
        // 32 threads all colliding on one counter fold into few reports.
        assert!(reports.len() <= 2);
        assert!(reports.iter().map(|r| r.occurrences).sum::<u64>() > 1);
    }

    #[test]
    #[should_panic(expected = "enable_tracing")]
    fn untraced_gpu_panics() {
        let gpu = Gpu::new(GpuConfig::test_tiny());
        let _ = check_races(&gpu);
    }

    #[test]
    fn bounded_mode_caps_pairs_and_counts_dropped() {
        // 32 threads hammering one counter produce far more than 2 distinct
        // conflicting pairs per finding: the cap must cut off with a
        // truncation marker, while occurrences still count everything.
        let gpu = racy_gpu();
        let bounded = check_races_bounded(&gpu, DetectorMode::Precise, 2);
        assert!(!bounded.findings.is_empty());
        for f in &bounded.findings {
            assert!(f.pairs.len() <= 2);
            assert!(!f.pairs.is_empty());
        }
        let truncated = bounded.truncated();
        assert!(
            !truncated.is_empty(),
            "a 32-thread pileup must exceed a 2-pair cap"
        );
        for f in &truncated {
            assert!(f.dropped > 0);
            assert!(
                f.report.occurrences > f.pairs.len() as u64,
                "occurrences must keep counting past the cap"
            );
        }
    }

    #[test]
    fn bounded_mode_reports_match_unbounded_detection() {
        // The cap bounds retained *evidence*, never the finding set: the
        // deduplicated reports are identical to unbounded detection's.
        let gpu = racy_gpu();
        let unbounded = check_races(&gpu);
        let bounded = check_races_bounded(&gpu, DetectorMode::Precise, 3);
        assert_eq!(bounded.reports(), unbounded);
    }

    #[test]
    fn bounded_mode_with_ample_cap_truncates_nothing() {
        let gpu = racy_gpu();
        let bounded = check_races_bounded(&gpu, DetectorMode::Precise, 1_000_000);
        assert!(bounded.truncated().is_empty());
        for f in &bounded.findings {
            assert_eq!(f.dropped, 0);
        }
    }
}
