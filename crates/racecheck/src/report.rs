//! Race reports: deduplicated descriptions of detected conflicts.

use ecl_simt::{AccessKind, AccessMode, Space};
use std::fmt;

/// One side of a racing access pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RaceSite {
    /// Global thread id.
    pub thread: u32,
    /// Access mode (plain / volatile — atomics never appear on both sides).
    pub mode: AccessMode,
    /// Load / store / RMW.
    pub kind: AccessKind,
}

/// The flavor of a detected race.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RaceClass {
    /// Two non-atomic writes.
    WriteWrite,
    /// A non-atomic read concurrent with a write.
    ReadWrite,
    /// An atomic access concurrent with a non-atomic access to the same
    /// location — still a race per the CUDA memory model.
    MixedAtomic,
    /// Two atomic accesses whose scopes do not cover each other —
    /// block-scoped atomics issued from *different* blocks. Atomics only
    /// synchronize when each access's scope includes the other thread, so
    /// such a pair races exactly like plain accesses despite both sides
    /// being atomic (CUDA memory model §scopes; the paper's §II-A).
    ScopedAtomic,
}

/// A deduplicated data-race finding.
///
/// Reports are keyed by (kernel, allocation, race class, access modes):
/// millions of dynamic conflicts on the same array in the same kernel
/// collapse into one finding, the way Compute Sanitizer groups reports by
/// source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceReport {
    /// Kernel (launch) name where the race occurred.
    pub kernel: String,
    /// Address space of the racing location.
    pub space: Space,
    /// Base address of the allocation containing the racing address (the
    /// raw address for shared memory).
    pub allocation: u32,
    /// The allocation's name, when the code named it via `Gpu::alloc_named`.
    pub allocation_name: Option<String>,
    /// One racing byte address within the allocation (first seen).
    pub example_addr: u32,
    /// Classification.
    pub class: RaceClass,
    /// The two access descriptions (first seen pair).
    pub first: RaceSite,
    /// Second access of the example pair.
    pub second: RaceSite,
    /// How many dynamic conflicting pairs were folded into this report.
    pub occurrences: u64,
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let target = match &self.allocation_name {
            Some(name) => format!("array '{name}'"),
            None => format!("allocation {:#x}", self.allocation),
        };
        write!(
            f,
            "{:?} race in kernel '{}' on {:?} {} (addr {:#x}): \
             thread {} {:?} {:?} vs thread {} {:?} {:?} ({} occurrence(s))",
            self.class,
            self.kernel,
            self.space,
            target,
            self.example_addr,
            self.first.thread,
            self.first.mode,
            self.first.kind,
            self.second.thread,
            self.second.mode,
            self.second.kind,
            self.occurrences
        )
    }
}

impl RaceReport {
    /// Classifies a conflicting pair. Callers only pass pairs a detector has
    /// already found to conflict, so a both-atomic pair here means the
    /// atomics' scopes failed to cover each other (the detectors filter out
    /// properly-scoped atomic pairs before classification): that is
    /// [`RaceClass::ScopedAtomic`], not a mixed race — neither side is
    /// non-atomic.
    pub fn classify(a: (AccessMode, AccessKind), b: (AccessMode, AccessKind)) -> RaceClass {
        let a_atomic = a.0 == AccessMode::Atomic;
        let b_atomic = b.0 == AccessMode::Atomic;
        if a_atomic && b_atomic {
            RaceClass::ScopedAtomic
        } else if a_atomic || b_atomic {
            RaceClass::MixedAtomic
        } else if a.1.writes() && b.1.writes() {
            RaceClass::WriteWrite
        } else {
            RaceClass::ReadWrite
        }
    }
}

/// Formats a batch of reports as a human-readable summary: totals per
/// kernel and per race class, then the individual findings — the layout a
/// Compute-Sanitizer user expects.
pub fn format_summary(reports: &[RaceReport]) -> String {
    if reports.is_empty() {
        return "no data races detected\n".to_string();
    }
    let mut by_kernel: std::collections::BTreeMap<&str, (usize, u64)> =
        std::collections::BTreeMap::new();
    let mut by_class: std::collections::BTreeMap<&'static str, usize> =
        std::collections::BTreeMap::new();
    for r in reports {
        let e = by_kernel.entry(r.kernel.as_str()).or_insert((0, 0));
        e.0 += 1;
        e.1 += r.occurrences;
        let class = match r.class {
            RaceClass::WriteWrite => "write-write",
            RaceClass::ReadWrite => "read-write",
            RaceClass::MixedAtomic => "mixed-atomic",
            RaceClass::ScopedAtomic => "scoped-atomic",
        };
        *by_class.entry(class).or_insert(0) += 1;
    }
    let total_occurrences: u64 = reports.iter().map(|r| r.occurrences).sum();
    let mut out = format!(
        "{} data race finding(s), {} dynamic occurrence(s)\n\nper kernel:\n",
        reports.len(),
        total_occurrences
    );
    for (kernel, (findings, occurrences)) in by_kernel {
        out.push_str(&format!(
            "  {kernel:<24} {findings} finding(s), {occurrences} occurrence(s)\n"
        ));
    }
    out.push_str("\nper class:\n");
    for (class, count) in by_class {
        out.push_str(&format!("  {class:<24} {count}\n"));
    }
    out.push_str("\nfindings:\n");
    for r in reports {
        out.push_str(&format!("  {r}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        use AccessKind::*;
        use AccessMode::*;
        assert_eq!(
            RaceReport::classify((Plain, Store), (Plain, Store)),
            RaceClass::WriteWrite
        );
        assert_eq!(
            RaceReport::classify((Plain, Load), (Volatile, Store)),
            RaceClass::ReadWrite
        );
        assert_eq!(
            RaceReport::classify((Atomic, Rmw), (Plain, Load)),
            RaceClass::MixedAtomic
        );
        // A conflicting atomic-atomic pair can only mean a scope failure —
        // not "mixed", since neither side is non-atomic.
        assert_eq!(
            RaceReport::classify((Atomic, Rmw), (Atomic, Rmw)),
            RaceClass::ScopedAtomic
        );
    }

    /// Pins the full (mode, kind) × (mode, kind) classification matrix so a
    /// future edit to `classify` cannot silently relabel a class: both
    /// atomic → scoped-atomic, exactly one atomic → mixed-atomic, otherwise
    /// write-write iff both sides write, else read-write. Also pins symmetry.
    #[test]
    fn classification_matrix_is_pinned() {
        use AccessKind::*;
        use AccessMode::*;
        let modes = [Plain, Volatile, Atomic];
        let kinds = [Load, Store, Rmw];
        for &am in &modes {
            for &ak in &kinds {
                for &bm in &modes {
                    for &bk in &kinds {
                        let a = (am, ak);
                        let b = (bm, bk);
                        let expected = match (am == Atomic, bm == Atomic) {
                            (true, true) => RaceClass::ScopedAtomic,
                            (true, false) | (false, true) => RaceClass::MixedAtomic,
                            (false, false) => {
                                if ak.writes() && bk.writes() {
                                    RaceClass::WriteWrite
                                } else {
                                    RaceClass::ReadWrite
                                }
                            }
                        };
                        assert_eq!(
                            RaceReport::classify(a, b),
                            expected,
                            "classify({a:?}, {b:?})"
                        );
                        assert_eq!(
                            RaceReport::classify(a, b),
                            RaceReport::classify(b, a),
                            "classify must be symmetric for ({a:?}, {b:?})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn summary_names_scoped_atomic() {
        let site = RaceSite {
            thread: 0,
            mode: AccessMode::Atomic,
            kind: AccessKind::Rmw,
        };
        let reports = vec![RaceReport {
            kernel: "k".into(),
            space: Space::Global,
            allocation: 0,
            allocation_name: None,
            example_addr: 0,
            class: RaceClass::ScopedAtomic,
            first: site,
            second: site,
            occurrences: 1,
        }];
        assert!(format_summary(&reports).contains("scoped-atomic"));
    }

    #[test]
    fn summary_counts_and_groups() {
        let site = RaceSite {
            thread: 1,
            mode: AccessMode::Plain,
            kind: AccessKind::Load,
        };
        let reports = vec![
            RaceReport {
                kernel: "k1".into(),
                space: Space::Global,
                allocation: 0,
                allocation_name: None,
                example_addr: 0,
                class: RaceClass::ReadWrite,
                first: site,
                second: site,
                occurrences: 10,
            },
            RaceReport {
                kernel: "k1".into(),
                space: Space::Global,
                allocation: 64,
                allocation_name: None,
                example_addr: 64,
                class: RaceClass::WriteWrite,
                first: site,
                second: site,
                occurrences: 5,
            },
        ];
        let s = format_summary(&reports);
        assert!(s.contains("2 data race finding(s), 15 dynamic occurrence(s)"));
        assert!(s.contains("k1"));
        assert!(s.contains("read-write"));
        assert!(s.contains("write-write"));
        assert_eq!(format_summary(&[]), "no data races detected\n");
    }

    #[test]
    fn display_is_informative() {
        let r = RaceReport {
            kernel: "cc_compute".into(),
            space: Space::Global,
            allocation: 0x100,
            allocation_name: Some("label".into()),
            example_addr: 0x104,
            class: RaceClass::ReadWrite,
            first: RaceSite {
                thread: 1,
                mode: AccessMode::Plain,
                kind: AccessKind::Load,
            },
            second: RaceSite {
                thread: 2,
                mode: AccessMode::Plain,
                kind: AccessKind::Store,
            },
            occurrences: 42,
        };
        let s = r.to_string();
        assert!(s.contains("cc_compute"));
        assert!(s.contains("42"));
    }
}
