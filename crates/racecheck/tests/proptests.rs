//! Property-based tests for the race detectors: soundness invariants that
//! must hold for arbitrary generated device programs.

use ecl_racecheck::{check_races, check_races_hb, check_races_with_mode, DetectorMode};
use ecl_simt::{ForEach, Gpu, GpuConfig, LaunchConfig, StoreVisibility};
use proptest::prelude::*;

/// One synthetic access in a generated program.
#[derive(Debug, Clone, Copy)]
struct Op {
    slot: u8,
    write: bool,
    atomic: bool,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (0u8..16, any::<bool>(), any::<bool>()).prop_map(|(slot, write, atomic)| Op {
            slot,
            write,
            atomic,
        }),
        1..24,
    )
}

/// Runs a grid of threads that all execute the same op list over a shared
/// 16-word buffer.
fn run_program(ops: Vec<Op>, threads: u32, seed: u64) -> Gpu {
    let mut gpu = Gpu::new(GpuConfig::test_tiny());
    gpu.set_seed(seed);
    gpu.enable_tracing();
    let buf = gpu.alloc::<u32>(16);
    gpu.launch(
        LaunchConfig::for_items(threads).with_visibility(StoreVisibility::DeferUntilYield),
        ForEach::new("generated", threads, move |ctx, tid| {
            for op in &ops {
                let p = buf.at(op.slot as usize);
                match (op.write, op.atomic) {
                    (false, false) => {
                        let _ = ctx.load(p);
                    }
                    (false, true) => {
                        let _ = ctx.atomic_load(p);
                    }
                    (true, false) => ctx.store(p, tid),
                    (true, true) => ctx.atomic_store(p, tid),
                }
            }
        }),
    );
    gpu
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All-atomic programs never race, under any detector.
    #[test]
    fn all_atomic_programs_are_clean(mut program in ops(), seed in any::<u64>()) {
        for op in &mut program {
            op.atomic = true;
        }
        let gpu = run_program(program, 16, seed);
        prop_assert!(check_races(&gpu).is_empty());
        prop_assert!(check_races_hb(&gpu).is_empty());
    }

    /// Read-only programs never race, even with plain loads.
    #[test]
    fn read_only_programs_are_clean(mut program in ops(), seed in any::<u64>()) {
        for op in &mut program {
            op.write = false;
        }
        let gpu = run_program(program, 16, seed);
        prop_assert!(check_races(&gpu).is_empty());
        prop_assert!(check_races_hb(&gpu).is_empty());
    }

    /// A program with any non-atomic write to a slot that another thread
    /// also touches must race (all threads run the same op list).
    #[test]
    fn shared_plain_writes_always_race(program in ops(), seed in any::<u64>()) {
        let has_plain_write = program.iter().any(|op| op.write && !op.atomic);
        let gpu = run_program(program.clone(), 16, seed);
        let reports = check_races(&gpu);
        if has_plain_write {
            prop_assert!(
                !reports.is_empty(),
                "plain write shared by 16 threads must race: {program:?}"
            );
        }
        // The HB detector must agree: no release/acquire edges exist here
        // (all atomics are relaxed).
        prop_assert_eq!(reports.is_empty(), check_races_hb(&gpu).is_empty());
    }

    /// Detection is deterministic in the trace: same program + seed gives
    /// the same findings; and single-threaded programs never race.
    #[test]
    fn detection_is_stable_and_single_thread_is_clean(program in ops(), seed in any::<u64>()) {
        let a = check_races(&run_program(program.clone(), 16, seed)).len();
        let b = check_races(&run_program(program.clone(), 16, seed)).len();
        prop_assert_eq!(a, b);
        let solo = run_program(program, 1, seed);
        prop_assert!(check_races(&solo).is_empty());
    }

    /// The Compute-Sanitizer-like mode never reports more than Precise for
    /// these (global-memory-only) programs — its blind spot only removes
    /// findings.
    #[test]
    fn shared_only_mode_is_a_subset(program in ops(), seed in any::<u64>()) {
        let gpu = run_program(program, 8, seed);
        let precise = check_races(&gpu).len();
        let shared_only = check_races_with_mode(&gpu, DetectorMode::SharedOnly).len();
        prop_assert!(shared_only <= precise);
        prop_assert_eq!(shared_only, 0);
    }
}
