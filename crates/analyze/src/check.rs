//! The static checker: pair analysis over declared kernel footprints.
//!
//! For every kernel contract, every unordered pair of footprint entries on
//! the same buffer (including an entry paired with itself) with at least one
//! write is either **discharged** by one of four safety rules or reported as
//! a statically-possible conflict:
//!
//! 1. *Atomic-atomic*: both entries are [`AccessMode::Atomic`]. The suite's
//!    atomics are device-scoped, so atomic pairs never race (the detector's
//!    block-scope exception has no counterpart in these codes).
//! 2. *Barrier-ordered*: both entries are shared-memory and carry different
//!    [`FootprintEntry::phase`] epoch tags — a block barrier separates the
//!    epochs, and shared memory is only visible within the block the barrier
//!    covers. Global entries never use this rule (block barriers do not
//!    order accesses across blocks).
//! 3. *Declared-disjoint regions*: both entries carry different
//!    [`FootprintEntry::region`] tags, asserting their element sets never
//!    overlap within an epoch (e.g. APSP's pivot-line reads vs. owned-tile
//!    writes). The checker trusts the declaration; the differential harness
//!    discharges it dynamically — an overlapping access would surface as an
//!    unpredicted dynamic race.
//! 4. *Owner-disjoint*: both entries have an owned index discipline
//!    ([`ecl_simt::IndexDiscipline::is_owned`]), so each element is touched
//!    by exactly one thread. The dynamic sanitizer enforces exactly this
//!    invariant per access, which is what makes the rule sound rather than
//!    aspirational.
//!
//! Conflicts are classified with the same rules the dynamic detector uses
//! ([`RaceReport::classify`]) and tagged with the benign class the contract
//! declares; a conflict with no benign class fails the check.

use ecl_core::contracts::for_algorithm;
use ecl_core::suite::{Algorithm, Variant};
use ecl_racecheck::{RaceClass, RaceReport};
use ecl_simt::{AccessMode, BenignClass, FootprintEntry, KernelContract, Space};

/// One statically-possible cross-thread conflict, deduplicated by
/// (kernel, buffer, space, class) the way the dynamic detector groups its
/// findings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conflict {
    /// Kernel whose contract admits the conflict.
    pub kernel: String,
    /// The buffer both entries touch.
    pub buffer: &'static str,
    /// Address space of the buffer.
    pub space: Space,
    /// Classification, shared with the dynamic detector.
    pub class: RaceClass,
    /// The declared benign class, if any entry of any contributing pair
    /// carries one. `None` means the conflict is *unclassified* — a checker
    /// failure.
    pub benign: Option<BenignClass>,
    /// Description of one contributing entry pair.
    pub first: String,
    /// The other side of the example pair.
    pub second: String,
    /// How many entry pairs folded into this conflict.
    pub pairs: u32,
}

impl std::fmt::Display for Conflict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?} conflict in '{}' on {:?} '{}': {} vs {} — {}",
            self.class,
            self.kernel,
            self.space,
            self.buffer,
            self.first,
            self.second,
            match self.benign {
                Some(b) => format!("benign ({b})"),
                None => "UNCLASSIFIED".to_string(),
            }
        )
    }
}

/// Whether a pair of same-buffer entries is discharged by the safety rules.
fn pair_is_safe(a: &FootprintEntry, b: &FootprintEntry) -> bool {
    // Rule 1: atomic-atomic (device scope throughout the suite).
    if a.mode == AccessMode::Atomic && b.mode == AccessMode::Atomic {
        return true;
    }
    // Rule 2: barrier epochs — shared memory only (a block barrier orders
    // nothing across blocks, and global buffers are visible to all blocks).
    if a.space == Space::Shared {
        if let (Some(pa), Some(pb)) = (a.phase, b.phase) {
            if pa != pb {
                return true;
            }
        }
    }
    // Rule 3: declared-disjoint regions (discharged dynamically by the
    // differential harness).
    if let (Some(ra), Some(rb)) = (a.region, b.region) {
        if ra != rb {
            return true;
        }
    }
    // Rule 4: both sides owner-disjoint (enforced per-access by the
    // sanitizer's modular / first-touch checks).
    a.discipline.is_owned() && b.discipline.is_owned()
}

/// Runs the pair analysis over a set of kernel contracts and returns every
/// undischarged conflict, deduplicated by (kernel, buffer, space, class).
pub fn check_contracts(contracts: &[KernelContract]) -> Vec<Conflict> {
    let mut out: Vec<Conflict> = Vec::new();
    for contract in contracts {
        let n = contract.entries.len();
        for i in 0..n {
            for j in i..n {
                let (a, b) = (&contract.entries[i], &contract.entries[j]);
                if a.space != b.space || a.buffer != b.buffer {
                    continue;
                }
                if !(a.kind.writes() || b.kind.writes()) {
                    continue;
                }
                if pair_is_safe(a, b) {
                    continue;
                }
                let class = RaceReport::classify((a.mode, a.kind), (b.mode, b.kind));
                let benign = a.benign.or(b.benign);
                match out.iter_mut().find(|c| {
                    c.kernel == contract.kernel
                        && c.buffer == a.buffer
                        && c.space == a.space
                        && c.class == class
                }) {
                    Some(existing) => {
                        existing.pairs += 1;
                        existing.benign = existing.benign.or(benign);
                    }
                    None => out.push(Conflict {
                        kernel: contract.kernel.clone(),
                        buffer: a.buffer,
                        space: a.space,
                        class,
                        benign,
                        first: a.describe(),
                        second: b.describe(),
                        pairs: 1,
                    }),
                }
            }
        }
    }
    out.sort_by(|a, b| (&a.kernel, a.buffer).cmp(&(&b.kernel, b.buffer)));
    out
}

/// The static verdict for one algorithm × variant.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Which code was checked.
    pub algorithm: Algorithm,
    /// Which flavor.
    pub variant: Variant,
    /// Kernel names covered by the contract set.
    pub kernels: Vec<String>,
    /// Every statically-possible conflict.
    pub conflicts: Vec<Conflict>,
}

impl CheckReport {
    /// `true` when the pair analysis discharged every write-involving pair —
    /// the *race-freedom proof* the race-free variants must pass.
    pub fn is_race_free(&self) -> bool {
        self.conflicts.is_empty()
    }

    /// Conflicts with no declared benign class.
    pub fn unclassified(&self) -> Vec<&Conflict> {
        self.conflicts
            .iter()
            .filter(|c| c.benign.is_none())
            .collect()
    }

    /// `true` when every conflict carries a benign class — the bar the racy
    /// baselines must clear.
    pub fn fully_classified(&self) -> bool {
        self.unclassified().is_empty()
    }

    /// The per-variant acceptance rule: race-free variants must *prove*
    /// freedom; baselines must classify 100% of their conflicts.
    pub fn passes(&self) -> bool {
        match self.variant {
            Variant::RaceFree => self.is_race_free(),
            Variant::Baseline => self.fully_classified(),
        }
    }
}

/// Checks one algorithm × variant.
pub fn check_algorithm(algorithm: Algorithm, variant: Variant) -> CheckReport {
    let contracts = for_algorithm(algorithm, variant);
    let kernels = contracts.iter().map(|c| c.kernel.clone()).collect();
    CheckReport {
        algorithm,
        variant,
        kernels,
        conflicts: check_contracts(&contracts),
    }
}

/// Checks all six codes in both variants (twelve reports, paper table
/// order, baseline first).
pub fn check_suite() -> Vec<CheckReport> {
    let mut out = Vec::new();
    for alg in Algorithm::ALL {
        for variant in [Variant::Baseline, Variant::RaceFree] {
            out.push(check_algorithm(alg, variant));
        }
    }
    out
}

/// The gate the CI job enforces: every race-free report proves freedom and
/// every baseline report is fully classified.
pub fn suite_passes(reports: &[CheckReport]) -> bool {
    reports.iter().all(CheckReport::passes)
}

/// Renders the Table-II-style race census as a markdown table: per code and
/// variant, every statically-possible conflict with its classification and
/// benign category.
pub fn format_census(reports: &[CheckReport]) -> String {
    let mut out = String::from(
        "| Code | Variant | Kernel | Buffer | Class | Benign category |\n\
         |------|---------|--------|--------|-------|-----------------|\n",
    );
    for r in reports {
        if r.conflicts.is_empty() {
            out.push_str(&format!(
                "| {} | {} | — | — | — | *proven race-free* |\n",
                r.algorithm, r.variant
            ));
            continue;
        }
        for c in &r.conflicts {
            let class = match c.class {
                RaceClass::WriteWrite => "write-write",
                RaceClass::ReadWrite => "read-write",
                RaceClass::MixedAtomic => "mixed-atomic",
                // Contract atomics are device-scoped, so the static checker
                // never predicts a scope failure; kept for exhaustiveness.
                RaceClass::ScopedAtomic => "scoped-atomic",
            };
            let benign = match c.benign {
                Some(b) => b.to_string(),
                None => "**unclassified**".to_string(),
            };
            out.push_str(&format!(
                "| {} | {} | `{}` | `{}` | {} | {} |\n",
                r.algorithm, r.variant, c.kernel, c.buffer, class, benign
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_simt::AccessKind::{Load, Store};
    use ecl_simt::IndexDiscipline::{Arbitrary, OwnedByGlobalId};

    fn own() -> ecl_simt::IndexDiscipline {
        OwnedByGlobalId { elem_bytes: 4 }
    }

    #[test]
    fn owned_pairs_are_safe() {
        let c = KernelContract::new("k")
            .entry(FootprintEntry::global("b", AccessMode::Plain, Load, own()))
            .entry(FootprintEntry::global("b", AccessMode::Plain, Store, own()));
        assert!(check_contracts(&[c]).is_empty());
    }

    #[test]
    fn arbitrary_read_vs_owned_write_conflicts() {
        let c = KernelContract::new("k")
            .entry(FootprintEntry::global(
                "b",
                AccessMode::Plain,
                Load,
                Arbitrary,
            ))
            .entry(FootprintEntry::global("b", AccessMode::Plain, Store, own()));
        let conflicts = check_contracts(&[c]);
        assert_eq!(conflicts.len(), 1);
        assert_eq!(conflicts[0].class, RaceClass::ReadWrite);
        assert!(conflicts[0].benign.is_none());
    }

    #[test]
    fn atomic_pairs_are_safe() {
        use ecl_simt::AccessKind::Rmw;
        let c = KernelContract::new("k")
            .entry(FootprintEntry::global(
                "b",
                AccessMode::Atomic,
                Rmw,
                Arbitrary,
            ))
            .entry(FootprintEntry::global(
                "b",
                AccessMode::Atomic,
                Load,
                Arbitrary,
            ));
        assert!(check_contracts(&[c]).is_empty());
    }

    #[test]
    fn shared_epochs_order_but_global_epochs_do_not() {
        use ecl_simt::IndexDiscipline::OwnedRange;
        // Owned staging store in epoch 0, arbitrary load in epoch 1: only
        // the epoch rule can discharge the cross pair (the load is not
        // owned), and the store's self pair is owner-disjoint.
        let stage = |entry: FootprintEntry| {
            KernelContract::new("k")
                .entry(entry.phase(0))
                .entry(FootprintEntry::shared(AccessMode::Plain, Load, Arbitrary).phase(1))
        };
        let shared = stage(FootprintEntry::shared(
            AccessMode::Plain,
            Store,
            OwnedRange { elem_bytes: 4 },
        ));
        assert!(check_contracts(&[shared]).is_empty());
        // Same shape without epoch tags: the cross pair conflicts.
        let untagged = KernelContract::new("k")
            .entry(FootprintEntry::shared(
                AccessMode::Plain,
                Store,
                OwnedRange { elem_bytes: 4 },
            ))
            .entry(FootprintEntry::shared(AccessMode::Plain, Load, Arbitrary));
        assert_eq!(check_contracts(&[untagged]).len(), 1);
        // The same tags on a *global* buffer discharge nothing: block
        // barriers do not order accesses across blocks.
        let global = KernelContract::new("k")
            .entry(
                FootprintEntry::global("b", AccessMode::Plain, Store, OwnedRange { elem_bytes: 4 })
                    .phase(0),
            )
            .entry(FootprintEntry::global("b", AccessMode::Plain, Load, Arbitrary).phase(1));
        assert_eq!(check_contracts(&[global]).len(), 1);
    }

    #[test]
    fn distinct_regions_are_trusted() {
        let c = KernelContract::new("k")
            .entry(FootprintEntry::global("b", AccessMode::Plain, Store, own()).region("mine"))
            .entry(
                FootprintEntry::global("b", AccessMode::Plain, Load, Arbitrary).region("theirs"),
            );
        assert!(check_contracts(&[c]).is_empty());
    }

    #[test]
    fn write_write_self_pair_conflicts() {
        let c = KernelContract::new("k").entry(
            FootprintEntry::global("b", AccessMode::Plain, Store, Arbitrary)
                .benign(BenignClass::IdempotentWrite),
        );
        let conflicts = check_contracts(&[c]);
        assert_eq!(conflicts.len(), 1);
        assert_eq!(conflicts[0].class, RaceClass::WriteWrite);
        assert_eq!(conflicts[0].benign, Some(BenignClass::IdempotentWrite));
    }

    #[test]
    fn read_only_buffers_never_conflict() {
        let c = KernelContract::new("k")
            .entry(FootprintEntry::global(
                "b",
                AccessMode::Plain,
                Load,
                Arbitrary,
            ))
            .entry(FootprintEntry::global(
                "b",
                AccessMode::Volatile,
                Load,
                Arbitrary,
            ));
        assert!(check_contracts(&[c]).is_empty());
    }

    // Negative cases for the four discharge rules: contracts that *almost*
    // qualify for a rule must still conflict. Each test perturbs exactly the
    // condition its rule checks.

    #[test]
    fn rule1_near_miss_one_atomic_side_is_not_discharged() {
        // Rule 1 needs *both* sides atomic; an atomic RMW against a plain
        // load is the paper's mixed-atomic race, not a discharge.
        use ecl_simt::AccessKind::Rmw;
        let c = KernelContract::new("k")
            .entry(FootprintEntry::global(
                "b",
                AccessMode::Atomic,
                Rmw,
                Arbitrary,
            ))
            .entry(FootprintEntry::global(
                "b",
                AccessMode::Plain,
                Load,
                Arbitrary,
            ));
        let conflicts = check_contracts(&[c]);
        assert_eq!(conflicts.len(), 1);
        assert_eq!(conflicts[0].class, RaceClass::MixedAtomic);
    }

    #[test]
    fn rule2_near_miss_same_phase_shared_entries_are_not_discharged() {
        // Rule 2 needs *different* phase tags: two shared entries that both
        // carry a tag — but the same one — are in the same barrier epoch.
        let c = KernelContract::new("k")
            .entry(FootprintEntry::shared(AccessMode::Plain, Store, Arbitrary).phase(1))
            .entry(FootprintEntry::shared(AccessMode::Plain, Load, Arbitrary).phase(1));
        let conflicts = check_contracts(&[c]);
        assert!(
            conflicts.iter().any(|c| c.class == RaceClass::ReadWrite),
            "{conflicts:#?}"
        );
    }

    #[test]
    fn rule2_near_miss_one_tagged_side_is_not_discharged() {
        // Both sides must carry a tag: a tagged store against an untagged
        // load asserts nothing about their ordering. (The store's tagged
        // self-pair is a write-write conflict of its own; check the cross
        // pair specifically.)
        let c = KernelContract::new("k")
            .entry(FootprintEntry::shared(AccessMode::Plain, Store, Arbitrary).phase(0))
            .entry(FootprintEntry::shared(AccessMode::Plain, Load, Arbitrary));
        let conflicts = check_contracts(&[c]);
        assert!(
            conflicts.iter().any(|c| c.class == RaceClass::ReadWrite),
            "{conflicts:#?}"
        );
    }

    #[test]
    fn rule3_near_miss_same_region_tags_are_not_discharged() {
        // Rule 3 needs *different* region tags: the same tag on both sides
        // declares they touch the same element set.
        let c = KernelContract::new("k")
            .entry(FootprintEntry::global("b", AccessMode::Plain, Store, Arbitrary).region("same"))
            .entry(FootprintEntry::global("b", AccessMode::Plain, Load, Arbitrary).region("same"));
        let conflicts = check_contracts(&[c]);
        assert!(
            conflicts.iter().any(|c| c.class == RaceClass::ReadWrite),
            "{conflicts:#?}"
        );
    }

    #[test]
    fn rule4_near_miss_owned_read_vs_arbitrary_write_is_not_discharged() {
        // Rule 4 needs *both* disciplines owned: a thread that writes
        // arbitrary elements can hit another thread's owned slot.
        let c = KernelContract::new("k")
            .entry(FootprintEntry::global("b", AccessMode::Plain, Load, own()))
            .entry(FootprintEntry::global(
                "b",
                AccessMode::Plain,
                Store,
                Arbitrary,
            ));
        // The cross pair is the read-write race; the arbitrary store's
        // self-pair also surfaces (write-write), proving neither pair
        // involving the non-owned side is discharged.
        let conflicts = check_contracts(&[c]);
        assert_eq!(conflicts.len(), 2);
        assert!(conflicts.iter().any(|c| c.class == RaceClass::ReadWrite));
        assert!(conflicts.iter().any(|c| c.class == RaceClass::WriteWrite));
    }

    #[test]
    fn rule4_near_miss_mismatched_owned_strides_still_discharge_only_owned_pairs() {
        // Owned-by-global-id and owned-range are both owner-disjoint
        // disciplines, so mixing them *does* discharge — but only while both
        // sides stay owned. Replacing one with an arbitrary claim flips the
        // verdict. This pins the rule's boundary exactly at `is_owned`.
        use ecl_simt::IndexDiscipline::OwnedRange;
        let owned_pair = KernelContract::new("k")
            .entry(FootprintEntry::global("b", AccessMode::Plain, Store, own()))
            .entry(FootprintEntry::global(
                "b",
                AccessMode::Plain,
                Load,
                OwnedRange { elem_bytes: 4 },
            ));
        assert!(check_contracts(&[owned_pair]).is_empty());
        let broken = KernelContract::new("k")
            .entry(FootprintEntry::global("b", AccessMode::Plain, Store, own()))
            .entry(FootprintEntry::global(
                "b",
                AccessMode::Plain,
                Load,
                Arbitrary,
            ));
        assert_eq!(check_contracts(&[broken]).len(), 1);
    }

    #[test]
    fn race_free_variants_prove_clean_and_baselines_classify() {
        let reports = check_suite();
        assert_eq!(reports.len(), 12);
        assert!(suite_passes(&reports), "{:#?}", reports);
        for r in &reports {
            if r.variant == Variant::RaceFree || r.algorithm == Algorithm::Apsp {
                assert!(
                    r.is_race_free(),
                    "{} {} not proven race-free: {:#?}",
                    r.algorithm,
                    r.variant,
                    r.conflicts
                );
            }
        }
        // The racy baselines must actually *have* races — a census with no
        // entries would mean the contracts stopped modeling the paper.
        for alg in [
            Algorithm::Cc,
            Algorithm::Gc,
            Algorithm::Mis,
            Algorithm::Mst,
            Algorithm::Scc,
        ] {
            let r = check_algorithm(alg, Variant::Baseline);
            assert!(
                !r.conflicts.is_empty(),
                "{alg} baseline census is empty — contracts lost the races"
            );
            assert!(r.fully_classified(), "{alg}: {:#?}", r.unclassified());
        }
    }

    #[test]
    fn census_renders_every_algorithm() {
        let census = format_census(&check_suite());
        for alg in Algorithm::ALL {
            assert!(census.contains(alg.name()), "census missing {alg}");
        }
        assert!(census.contains("proven race-free"));
        assert!(!census.contains("unclassified"));
    }
}
