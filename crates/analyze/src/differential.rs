//! The dynamic/static differential harness.
//!
//! The static checker ([`crate::check`]) predicts, per kernel and buffer,
//! where cross-thread conflicts are possible. The dynamic detector
//! (`ecl-racecheck`) witnesses, per kernel and buffer, where they actually
//! happen on concrete runs. On inputs small enough to explore and with the
//! canonical policy/visibility mapping, the two must agree:
//!
//! - a **dynamically-witnessed race** on a (kernel, buffer) the checker
//!   proved safe means a contract *lies* (its disciplines or declared
//!   regions over-promise) — [`Mismatch::UnpredictedDynamicRace`];
//! - a **statically-predicted conflict** never witnessed on any input/seed
//!   means the contract *over-approximates* (or the inputs fail to exercise
//!   it) — [`Mismatch::UnwitnessedStaticConflict`].
//!
//! The static side is filtered to kernels that actually launched: the suite
//! declares contracts for engines a given entry point never runs (e.g.
//! SCC's worklist kernels, MIS's synchronous rounds), and those cannot be
//! witnessed by construction.
//!
//! The harness compares at (kernel, buffer) granularity — the same key the
//! detector's deduplication uses — unioned over every input and scheduler
//! seed, so a conflict only needs one witnessing interleaving somewhere.

use crate::check::check_algorithm;
use ecl_core::contracts::for_algorithm;
use ecl_core::primitives::{Atomic, Plain, Volatile, VolatileReadPlainWrite};
use ecl_core::suite::{Algorithm, Variant};
use ecl_core::{apsp, cc, gc, mis, mst, scc};
use ecl_graph::{gen, Csr, CsrBuilder};
use ecl_simt::{Gpu, GpuConfig, StoreVisibility};
use std::collections::BTreeSet;

/// One disagreement between the static and dynamic views.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mismatch {
    /// The detector witnessed a race the checker did not predict.
    UnpredictedDynamicRace {
        /// Kernel the race occurred in.
        kernel: String,
        /// Buffer (allocation name, or `"shared"`).
        buffer: String,
    },
    /// The checker predicted a conflict no run witnessed.
    UnwitnessedStaticConflict {
        /// Kernel the contract belongs to.
        kernel: String,
        /// Buffer the conflict was predicted on.
        buffer: String,
    },
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mismatch::UnpredictedDynamicRace { kernel, buffer } => write!(
                f,
                "dynamic race in '{kernel}' on '{buffer}' that the static checker did not predict"
            ),
            Mismatch::UnwitnessedStaticConflict { kernel, buffer } => write!(
                f,
                "static conflict in '{kernel}' on '{buffer}' never witnessed dynamically"
            ),
        }
    }
}

/// Outcome of differencing one algorithm × variant over a set of inputs.
#[derive(Debug, Clone)]
pub struct DiffOutcome {
    /// Which code was differenced.
    pub algorithm: Algorithm,
    /// Which flavor.
    pub variant: Variant,
    /// Statically-predicted conflict sites, filtered to launched kernels.
    pub static_conflicts: BTreeSet<(String, String)>,
    /// Dynamically-witnessed race sites, unioned over inputs and seeds.
    pub dynamic_races: BTreeSet<(String, String)>,
    /// Kernels observed launching at least once.
    pub launched: BTreeSet<String>,
    /// The disagreements (empty = the views coincide).
    pub mismatches: Vec<Mismatch>,
}

/// Runs one algorithm × variant on a caller-provided GPU with the canonical
/// policy/visibility mapping (the same mapping `racecheck_tool` and the
/// sweep matrix use). The caller decides whether tracing or the sanitizer is
/// armed. MST and APSP inputs get deterministic weights when missing.
pub fn run_traced_variant(gpu: &mut Gpu, algorithm: Algorithm, variant: Variant, graph: &Csr) {
    let owned;
    let graph = if algorithm.weighted() && graph.weights().is_none() {
        owned = graph.clone().with_random_weights(1_000, 0xec1);
        &owned
    } else {
        graph
    };
    let race_free = variant == Variant::RaceFree;
    let deferred = StoreVisibility::DeferUntilYield;
    let immediate = StoreVisibility::Immediate;
    match (algorithm, race_free) {
        (Algorithm::Apsp, _) => drop(apsp::run_traced(gpu, graph)),
        (Algorithm::Cc, false) => drop(cc::run_traced::<Plain>(gpu, graph, deferred)),
        (Algorithm::Cc, true) => drop(cc::run_traced::<Atomic>(gpu, graph, immediate)),
        (Algorithm::Gc, false) => drop(gc::run_traced::<Volatile, Plain>(gpu, graph, deferred)),
        (Algorithm::Gc, true) => drop(gc::run_traced::<Atomic, Atomic>(gpu, graph, immediate)),
        (Algorithm::Mis, false) => drop(mis::run_traced::<VolatileReadPlainWrite>(
            gpu,
            graph,
            StoreVisibility::DeferBounded {
                every: 2,
                eighths: 4,
            },
        )),
        (Algorithm::Mis, true) => drop(mis::run_traced::<Atomic>(gpu, graph, immediate)),
        (Algorithm::Mst, false) => drop(mst::run_traced::<Volatile>(gpu, graph, deferred)),
        (Algorithm::Mst, true) => drop(mst::run_traced::<Atomic>(gpu, graph, immediate)),
        (Algorithm::Scc, false) => drop(scc::run_traced::<Plain>(gpu, graph, deferred)),
        (Algorithm::Scc, true) => drop(scc::run_traced::<Atomic>(gpu, graph, immediate)),
    }
}

/// A wheel-plus-chains graph built to witness every CC baseline race,
/// including the edge-parallel heavy kernel's. Three properties matter:
///
/// 1. the hub is the *highest*-numbered vertex, because the hooking kernels
///    only process edges toward smaller endpoints — a low-ID hub would make
///    the heavy kernel skip all of its edges;
/// 2. the rim decomposes into chains that only connect *through* the hub,
///    so the light pass cannot pre-merge them and the heavy pass performs
///    real unions (a single rim path would leave the heavy kernel nothing
///    but reads of an already-flat forest);
/// 3. the chains are strided (vertex `i` links to `i + STRIDE`), so the
///    heavy kernel's chunked threads — which own *consecutive* edge slots of
///    the sorted adjacency list — chase and path-shorten the same chains
///    concurrently instead of each privately owning one chain.
///
/// A tail path hanging off vertex 0 keeps representative chains long enough
/// for the flatten and find-min kernels to race on as well.
fn hub_and_chain(hub_degree: usize, tail: usize) -> Csr {
    const STRIDE: usize = 12;
    let n = 1 + hub_degree + tail;
    let hub = (n - 1) as u32;
    let mut b = CsrBuilder::new(n).symmetric(true);
    for i in 0..hub_degree {
        b.add_edge(hub, i as u32);
        if i + STRIDE < hub_degree {
            b.add_edge(i as u32, (i + STRIDE) as u32);
        }
    }
    for i in hub_degree..hub_degree + tail {
        let prev = if i == hub_degree { 0 } else { i - 1 };
        b.add_edge(prev as u32, i as u32);
    }
    b.build()
}

/// The canonical small inputs the differential harness runs per algorithm:
/// two graphs chosen so every baseline conflict has a witnessing
/// interleaving (a heavy hub for CC's heavy kernel, representative chains
/// for the union-find races, enough contention for the flag and
/// pair-max races).
pub fn default_inputs(algorithm: Algorithm) -> Vec<Csr> {
    if algorithm.directed() {
        vec![
            gen::star_polygon(96, 5),
            gen::rmat(128, 512, 0.5, 0.2, 0.2, false, 11),
        ]
    } else {
        vec![
            hub_and_chain(48, 40),
            gen::rmat(192, 768, 0.5, 0.2, 0.2, true, 11),
        ]
    }
}

/// Differences one algorithm × variant over the given inputs and scheduler
/// seeds. The dynamic side is the union of detector findings across every
/// (input, seed) run; the static side is the checker's conflict set
/// restricted to kernels that launched at least once.
pub fn diff_algorithm(
    algorithm: Algorithm,
    variant: Variant,
    inputs: &[Csr],
    cfg: &GpuConfig,
    seeds: &[u64],
) -> DiffOutcome {
    let mut dynamic_races = BTreeSet::new();
    let mut launched = BTreeSet::new();
    for graph in inputs {
        for &seed in seeds {
            let mut gpu = Gpu::new(cfg.clone());
            gpu.set_seed(seed);
            gpu.enable_tracing();
            run_traced_variant(&mut gpu, algorithm, variant, graph);
            for launch in &gpu.run_stats().launches {
                launched.insert(launch.name.clone());
            }
            for report in ecl_racecheck::check_races(&gpu) {
                let buffer = match report.allocation_name {
                    Some(name) => name,
                    None => match report.space {
                        ecl_simt::Space::Shared => ecl_simt::SHARED_BUFFER.to_string(),
                        ecl_simt::Space::Global => format!("{:#x}", report.allocation),
                    },
                };
                dynamic_races.insert((report.kernel, buffer));
            }
        }
    }
    let static_conflicts: BTreeSet<(String, String)> = check_algorithm(algorithm, variant)
        .conflicts
        .into_iter()
        .filter(|c| launched.contains(&c.kernel))
        .map(|c| (c.kernel, c.buffer.to_string()))
        .collect();

    let mut mismatches = Vec::new();
    for (kernel, buffer) in dynamic_races.difference(&static_conflicts) {
        mismatches.push(Mismatch::UnpredictedDynamicRace {
            kernel: kernel.clone(),
            buffer: buffer.clone(),
        });
    }
    for (kernel, buffer) in static_conflicts.difference(&dynamic_races) {
        mismatches.push(Mismatch::UnwitnessedStaticConflict {
            kernel: kernel.clone(),
            buffer: buffer.clone(),
        });
    }
    DiffOutcome {
        algorithm,
        variant,
        static_conflicts,
        dynamic_races,
        launched,
        mismatches,
    }
}

/// Differences every algorithm × variant on its default inputs. All twelve
/// outcomes must have empty mismatch lists for the suite's static story to
/// be considered discharged.
pub fn diff_suite(cfg: &GpuConfig, seeds: &[u64]) -> Vec<DiffOutcome> {
    let mut out = Vec::new();
    for alg in Algorithm::ALL {
        let inputs = default_inputs(alg);
        for variant in [Variant::Baseline, Variant::RaceFree] {
            out.push(diff_algorithm(alg, variant, &inputs, cfg, seeds));
        }
    }
    out
}

/// Sanity helper shared by the tool and tests: contracts exist for every
/// kernel that launched (the sanitizer would otherwise fail the launch).
pub fn launched_kernels_have_contracts(outcome: &DiffOutcome) -> bool {
    let declared: BTreeSet<String> = for_algorithm(outcome.algorithm, outcome.variant)
        .into_iter()
        .map(|c| c.kernel)
        .collect();
    outcome.launched.iter().all(|k| declared.contains(k))
}
