//! Static analysis of the suite's kernel access contracts, and the
//! differential harness that keeps the static story honest against the
//! dynamic race detector.
//!
//! Every kernel in `ecl-core` declares a [`ecl_simt::KernelContract`]: the
//! complete per-buffer footprint of its threads (access mode × kind × index
//! discipline × barrier phase). This crate consumes those declarations three
//! ways:
//!
//! - [`check`] is the **static checker**: it pairs the entries of each
//!   contract and either proves the kernel free of cross-thread races
//!   (atomic-atomic, owner-disjoint, barrier-ordered, or declared-disjoint
//!   regions) or classifies each remaining statically-possible conflict into
//!   the paper's benign-race taxonomy (§IV-B). A conflict with no benign
//!   class is a checker failure.
//! - [`differential`] is the **dynamic/static differential harness**: it
//!   runs each algorithm variant on small inputs under the trace-based
//!   detector (`ecl-racecheck`) and demands that the statically-predicted
//!   conflict set and the dynamically-witnessed race set coincide, kernel by
//!   kernel and buffer by buffer. A predicted-but-never-witnessed conflict
//!   means the contract over-approximates; a witnessed-but-unpredicted race
//!   means it lies.
//! - [`sanitize`] arms the in-simulator contract **sanitizer**
//!   ([`ecl_simt::Gpu::install_contracts`]) during full runs, so any access
//!   outside a declared footprint fails the launch with a typed
//!   [`ecl_simt::SimError::ContractViolation`].
//! - [`repair`] is the **automated race repair pass**: it synthesizes a
//!   race-free variant from detector output by rewriting every flagged
//!   access op in the baseline kernel IR ([`ecl_simt::KernelIr`]) to a
//!   relaxed atomic, re-lowers updated contracts and an execution mode
//!   table, and verifies the result with all three oracles (static proof,
//!   dynamic racecheck, differential fixpoint match vs the hand-written
//!   race-free variant) while measuring the perf delta.
//!
//! The `analyze_tool` and `repair_tool` binaries in `ecl-bench` drive these
//! and render the Table-II-style race census and the repair report.

pub mod check;
pub mod differential;
pub mod repair;
pub mod sanitize;

pub use check::{
    check_algorithm, check_contracts, check_suite, format_census, suite_passes, CheckReport,
    Conflict,
};
pub use differential::{
    default_inputs, diff_algorithm, diff_suite, launched_kernels_have_contracts, DiffOutcome,
    Mismatch,
};
pub use repair::{
    synthesize, verify as verify_repair, InputComparison, RepairError, RepairVerification,
    RepairedVariant, Rewrite,
};
pub use sanitize::sanitize_run;
