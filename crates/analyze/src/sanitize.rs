//! Sanitizer-armed full runs: contracts enforced on every device access.
//!
//! [`sanitize_run`] installs the algorithm's contracts on a fresh GPU
//! ([`ecl_simt::Gpu::install_contracts`]) and runs the variant end to end.
//! Every access of every launch is validated against the declared footprint;
//! the first access outside it fails the launch with a typed
//! [`SimError::ContractViolation`]. A clean pass means the contracts are a
//! sound *over*-approximation of what the kernels actually do — the other
//! half of the story the static checker tells (the checker proves the
//! declarations safe; the sanitizer proves the code stays within them).

use crate::differential::run_traced_variant;
use ecl_core::contracts::for_algorithm;
use ecl_core::suite::{Algorithm, Variant};
use ecl_graph::Csr;
use ecl_simt::{catch_sim, Gpu, GpuConfig, SimError};

/// Runs one algorithm × variant with the contract sanitizer armed,
/// returning the first contract violation (or other launch failure) as a
/// typed error.
pub fn sanitize_run(
    algorithm: Algorithm,
    variant: Variant,
    graph: &Csr,
    cfg: &GpuConfig,
    seed: u64,
) -> Result<(), SimError> {
    let mut gpu = Gpu::new(cfg.clone());
    gpu.set_seed(seed);
    gpu.install_contracts(for_algorithm(algorithm, variant));
    catch_sim(|| run_traced_variant(&mut gpu, algorithm, variant, graph))
}
