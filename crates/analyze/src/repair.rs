//! Automated race repair: detector output → synthesized race-free variant.
//!
//! The paper removes data races *by hand*: every flagged plain access is
//! rewritten to a relaxed atomic, bytes get the typecast-and-mask transform
//! (Figs. 3–4), packed pairs get per-half atomic updates (Fig. 5). This
//! module mechanizes that recipe over the access-level kernel IR
//! ([`ecl_simt::KernelIr`]):
//!
//! 1. **Flag** — union the static checker's baseline conflict sites
//!    ([`crate::check::check_algorithm`], *including* the benign-classified
//!    ones: the paper converts those too) with the dynamic detector's
//!    witnessed races on the differential harness's default inputs. Both
//!    sides report at (kernel, buffer) granularity.
//! 2. **Rewrite** — in the baseline IR, flip every *repairable* op of every
//!    flagged (kernel, buffer) group to [`ecl_simt::AccessMode::Atomic`]
//!    ([`ecl_simt::AccessOp::make_atomic`]). Ops the kernel body hard-codes
//!    ([`ecl_simt::AccessOp::fixed`]) are never flagged by construction — a
//!    flagged group with no repairable op means the detector found a race
//!    the IR cannot express a repair for, and is a hard error. Unflagged
//!    groups keep their baseline modes: the repair is *minimal*, which is
//!    what makes its performance profile differ measurably from the
//!    hand-converted variant's blanket conversion.
//! 3. **Re-lower** — [`ecl_simt::lower_all`] turns the repaired IR back into
//!    [`ecl_simt::KernelContract`]s (the updated contract the synthesized
//!    variant ships with), and [`ecl_simt::ModeTable::from_ir`] derives the
//!    access-mode table the `IrDriven` policy executes it with.
//!
//! [`verify`] then runs the three oracles every synthesized variant must
//! pass before it is trusted:
//!
//! - **static**: the pair analysis over the re-lowered contracts discharges
//!   every write-involving pair (same bar as the hand-written race-free
//!   variants). Sound by construction — flagged pairs became atomic-atomic
//!   (rule 1) and a mode flip can never *undischarge* a pair — but checked,
//!   not assumed.
//! - **dynamic**: traced executions under the mode table, with the
//!   re-lowered contracts armed as a sanitizer, report zero races across the
//!   same inputs and seeds that witness every baseline race.
//! - **differential**: the synthesized variant's solution digest matches the
//!   hand-written race-free variant's on every catalog input — the two
//!   race-free codes compute the same fixpoints.
//!
//! The catalog runs double as the perf measurement: the same executions
//! that compare digests also compare cycle counts, giving the
//! synthesized-vs-hand-written delta for free.

use crate::check::{check_algorithm, check_contracts, Conflict};
use crate::differential::{default_inputs, run_traced_variant};
use ecl_core::contracts::ir_for_algorithm;
use ecl_core::primitives::IrDriven;
use ecl_core::suite::{run_algorithm_checked, run_synthesized, Algorithm, Variant};
use ecl_core::SimOptions;
use ecl_graph::inputs::{directed_catalog, undirected_catalog, GraphInput};
use ecl_graph::Csr;
use ecl_simt::{
    catch_sim, lower_all, AccessMode, Gpu, GpuConfig, KernelContract, KernelIr, ModeTable, OpKind,
    OpWidth, StoreVisibility,
};
use std::collections::BTreeSet;

/// A (kernel, buffer) group the detectors flagged as racy.
pub type RacyGroup = (String, String);

/// Why synthesis could not produce a repaired variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepairError {
    /// A flagged group has no policy-mediated op to rewrite: the race lives
    /// in an access the kernel body hard-codes, and repairing it would need
    /// new kernel code, not a mode flip.
    NoRepairableOp {
        /// Kernel the unfixable race is in.
        kernel: String,
        /// Buffer it is on.
        buffer: String,
    },
    /// A flagged kernel has no IR at all — the detector and the IR disagree
    /// about what kernels exist.
    UnknownKernel {
        /// The kernel the detector named.
        kernel: String,
    },
}

impl std::fmt::Display for RepairError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepairError::NoRepairableOp { kernel, buffer } => write!(
                f,
                "no repairable access op in kernel '{kernel}' for flagged buffer '{buffer}'"
            ),
            RepairError::UnknownKernel { kernel } => {
                write!(f, "detector flagged unknown kernel '{kernel}'")
            }
        }
    }
}

/// One mode flip the repair pass applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rewrite {
    /// Kernel the rewritten op belongs to.
    pub kernel: String,
    /// Buffer the op accesses.
    pub buffer: &'static str,
    /// What the op does.
    pub kind: OpKind,
    /// Element width.
    pub width: OpWidth,
    /// The mode the baseline issued (always rewritten to `Atomic`).
    pub from: AccessMode,
    /// `true` when the atomic form needs the typecast-and-mask (sub-word)
    /// or pair-half transform rather than a same-width atomic — the paper's
    /// Figs. 3–5 cases.
    pub masked: bool,
}

impl std::fmt::Display for Rewrite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}: {:?} {:?} {:?} -> Atomic{}",
            self.kernel,
            self.buffer,
            self.kind,
            self.width,
            self.from,
            if self.masked { " (masked)" } else { "" }
        )
    }
}

/// A synthesized race-free variant: the repaired IR plus everything derived
/// from it.
#[derive(Debug, Clone)]
pub struct RepairedVariant {
    /// Which code was repaired.
    pub algorithm: Algorithm,
    /// Groups the static checker flagged on the baseline contracts.
    pub static_flagged: BTreeSet<RacyGroup>,
    /// Groups the dynamic detector witnessed on the baseline runs.
    pub dynamic_flagged: BTreeSet<RacyGroup>,
    /// The union actually repaired.
    pub flagged: BTreeSet<RacyGroup>,
    /// The repaired IR (baseline IR with flagged groups flipped to atomic).
    pub ir: Vec<KernelIr>,
    /// The updated contracts, re-lowered from the repaired IR.
    pub contracts: Vec<KernelContract>,
    /// The access-mode table the `IrDriven` policy executes the variant with.
    pub mode_table: ModeTable,
    /// Every mode flip applied, in IR order.
    pub rewrites: Vec<Rewrite>,
}

/// Scheduler seeds for the dynamic side of flagging and verification — a
/// couple of distinct interleavings is all the default inputs need to
/// witness every baseline race (the differential suite pins exactly this).
pub const DETECT_SEEDS: [u64; 2] = [1, 42];

/// Collects the dynamic detector's (kernel, buffer) race sites for one
/// algorithm × variant over the given inputs and seeds, resolving buffers
/// the same way the differential harness does.
pub fn dynamic_race_groups(
    algorithm: Algorithm,
    variant: Variant,
    inputs: &[Csr],
    cfg: &GpuConfig,
    seeds: &[u64],
) -> BTreeSet<RacyGroup> {
    let mut out = BTreeSet::new();
    for graph in inputs {
        for &seed in seeds {
            let mut gpu = Gpu::new(cfg.clone());
            gpu.set_seed(seed);
            gpu.enable_tracing();
            run_traced_variant(&mut gpu, algorithm, variant, graph);
            for report in ecl_racecheck::check_races(&gpu) {
                let buffer = match report.allocation_name {
                    Some(name) => name,
                    None => match report.space {
                        ecl_simt::Space::Shared => ecl_simt::SHARED_BUFFER.to_string(),
                        ecl_simt::Space::Global => format!("{:#x}", report.allocation),
                    },
                };
                out.insert((report.kernel, buffer));
            }
        }
    }
    out
}

/// Synthesizes a race-free variant of `algorithm` from detector output:
/// flags racy (kernel, buffer) groups with both detectors on the baseline,
/// rewrites every repairable op in each group to a relaxed atomic, and
/// re-lowers contracts and the execution mode table from the repaired IR.
///
/// # Errors
///
/// Returns [`RepairError`] when a flagged group names a kernel the IR does
/// not know or contains no repairable op.
pub fn synthesize(algorithm: Algorithm, cfg: &GpuConfig) -> Result<RepairedVariant, RepairError> {
    // Static side: every baseline conflict, benign or not — the paper's
    // conversion removes the benign races too.
    let static_flagged: BTreeSet<RacyGroup> = check_algorithm(algorithm, Variant::Baseline)
        .conflicts
        .into_iter()
        .map(|c| (c.kernel, c.buffer.to_string()))
        .collect();
    // Dynamic side: witnessed races on the differential harness's inputs.
    let dynamic_flagged = dynamic_race_groups(
        algorithm,
        Variant::Baseline,
        &default_inputs(algorithm),
        cfg,
        &DETECT_SEEDS,
    );
    let flagged: BTreeSet<RacyGroup> = static_flagged.union(&dynamic_flagged).cloned().collect();

    let mut ir = ir_for_algorithm(algorithm, Variant::Baseline);
    let mut rewrites = Vec::new();
    for (kernel, buffer) in &flagged {
        let Some(k) = ir.iter_mut().find(|k| k.kernel == kernel.as_str()) else {
            return Err(RepairError::UnknownKernel {
                kernel: kernel.clone(),
            });
        };
        let mut repaired_any = false;
        for op in k.ops.iter_mut() {
            if op.buffer != buffer.as_str() || !op.repairable {
                continue;
            }
            repaired_any = true;
            let from = op.mode;
            if op.make_atomic() {
                rewrites.push(Rewrite {
                    kernel: kernel.clone(),
                    buffer: op.buffer,
                    kind: op.kind,
                    width: op.width,
                    from,
                    masked: op.needs_mask_transform(),
                });
            }
        }
        if !repaired_any {
            return Err(RepairError::NoRepairableOp {
                kernel: kernel.clone(),
                buffer: buffer.clone(),
            });
        }
    }
    let contracts = lower_all(&ir);
    let mode_table = ModeTable::from_ir(&ir);
    Ok(RepairedVariant {
        algorithm,
        static_flagged,
        dynamic_flagged,
        flagged,
        ir,
        contracts,
        mode_table,
        rewrites,
    })
}

/// One catalog input's synthesized-vs-hand-written comparison: the
/// differential oracle (digests must match, both must verify) and the perf
/// measurement (cycle counts) in one run pair.
#[derive(Debug, Clone)]
pub struct InputComparison {
    /// Catalog input name (paper table name), or a differential-harness
    /// input index for APSP.
    pub input: String,
    /// Solution digest of the synthesized variant.
    pub synthesized_digest: u64,
    /// Solution digest of the hand-written race-free variant.
    pub hand_written_digest: u64,
    /// Whether both runs passed their serial-reference validation.
    pub both_valid: bool,
    /// Simulated cycles of the synthesized variant.
    pub synthesized_cycles: u64,
    /// Simulated cycles of the hand-written race-free variant.
    pub hand_written_cycles: u64,
}

impl InputComparison {
    /// The differential oracle for this input.
    pub fn matches(&self) -> bool {
        self.both_valid && self.synthesized_digest == self.hand_written_digest
    }

    /// Synthesized / hand-written cycle ratio (< 1 means the minimal repair
    /// is faster than the blanket conversion).
    pub fn ratio(&self) -> f64 {
        self.synthesized_cycles as f64 / self.hand_written_cycles.max(1) as f64
    }
}

/// The three-oracle verdict for one synthesized variant.
#[derive(Debug, Clone)]
pub struct RepairVerification {
    /// Which code was verified.
    pub algorithm: Algorithm,
    /// Conflicts the static checker still finds in the re-lowered contracts
    /// (must be empty).
    pub static_conflicts: Vec<Conflict>,
    /// Races the dynamic detector still witnesses under the mode table
    /// (must be empty).
    pub dynamic_races: BTreeSet<RacyGroup>,
    /// Launch failures during the dynamic runs (sanitizer violations,
    /// watchdog) — must be empty; recorded as display strings.
    pub run_failures: Vec<String>,
    /// Per-input digest/cycle comparisons vs the hand-written variant.
    pub comparisons: Vec<InputComparison>,
}

impl RepairVerification {
    /// Oracle 1: the pair analysis discharges everything.
    pub fn static_clean(&self) -> bool {
        self.static_conflicts.is_empty()
    }

    /// Oracle 2: no witnessed races, no failed runs.
    pub fn dynamic_clean(&self) -> bool {
        self.dynamic_races.is_empty() && self.run_failures.is_empty()
    }

    /// Oracle 3: every catalog input's fixpoint matches the hand-written
    /// race-free variant's.
    pub fn differential_match(&self) -> bool {
        !self.comparisons.is_empty() && self.comparisons.iter().all(InputComparison::matches)
    }

    /// All three oracles.
    pub fn passes(&self) -> bool {
        self.static_clean() && self.dynamic_clean() && self.differential_match()
    }

    /// Geometric mean of the per-input synthesized/hand-written cycle
    /// ratios — the headline perf delta of the minimal repair.
    pub fn geomean_ratio(&self) -> f64 {
        if self.comparisons.is_empty() {
            return f64::NAN;
        }
        let log_sum: f64 = self.comparisons.iter().map(|c| c.ratio().ln()).sum();
        (log_sum / self.comparisons.len() as f64).exp()
    }
}

/// The catalog inputs the differential oracle and perf measurement run on:
/// the paper-table catalog for the five catalog algorithms, the
/// differential harness's inputs for APSP (which the matrix never runs on
/// catalog graphs — its dense kernels cap at 2048 vertices).
pub fn oracle_inputs(algorithm: Algorithm, scale: f64, seed: u64) -> Vec<(String, Csr)> {
    let catalog: &[GraphInput] = match algorithm {
        Algorithm::Apsp => {
            return default_inputs(algorithm)
                .into_iter()
                .enumerate()
                .map(|(i, g)| (format!("diff-input-{i}"), g))
                .collect();
        }
        Algorithm::Scc => directed_catalog(),
        _ => undirected_catalog(),
    };
    catalog
        .iter()
        .map(|input| (input.name().to_string(), input.build(scale, seed)))
        .collect()
}

/// Runs the three oracles over a synthesized variant.
///
/// The dynamic oracle reuses the flagging inputs/seeds (the configurations
/// that witness every baseline race), with the re-lowered contracts armed as
/// a sanitizer: any access outside the repaired IR's declared footprint
/// fails the launch and surfaces in `run_failures`. The differential oracle
/// runs the full catalog at `scale`, comparing against
/// [`run_algorithm_checked`] with [`Variant::RaceFree`].
pub fn verify(
    repaired: &RepairedVariant,
    cfg: &GpuConfig,
    scale: f64,
    graph_seed: u64,
) -> RepairVerification {
    let algorithm = repaired.algorithm;

    // Oracle 1: static pair analysis over the re-lowered contracts.
    let static_conflicts = check_contracts(&repaired.contracts);

    // Oracle 2: dynamic detector + contract sanitizer on traced runs under
    // the mode table.
    let mut dynamic_races = BTreeSet::new();
    let mut run_failures = Vec::new();
    for graph in &default_inputs(algorithm) {
        for &seed in &DETECT_SEEDS {
            let mut gpu = Gpu::new(cfg.clone());
            gpu.set_seed(seed);
            gpu.enable_tracing();
            gpu.install_contracts(repaired.contracts.iter().cloned());
            gpu.install_mode_table(repaired.mode_table.clone());
            if let Err(e) = catch_sim(|| run_traced_synthesized(&mut gpu, algorithm, graph)) {
                run_failures.push(format!("seed {seed}: {e}"));
                continue;
            }
            for report in ecl_racecheck::check_races(&gpu) {
                let buffer = report
                    .allocation_name
                    .unwrap_or_else(|| format!("{:#x}", report.allocation));
                dynamic_races.insert((report.kernel, buffer));
            }
        }
    }

    // Oracle 3 + perf: catalog differential against the hand-written
    // race-free variant.
    let opts = SimOptions::default();
    let mut comparisons = Vec::new();
    for (name, graph) in oracle_inputs(algorithm, scale, graph_seed) {
        let seed = DETECT_SEEDS[0];
        let synth = run_synthesized(algorithm, &repaired.mode_table, &graph, cfg, seed, &opts);
        let hand = run_algorithm_checked(algorithm, Variant::RaceFree, &graph, cfg, seed, &opts);
        match (synth, hand) {
            (Ok(s), Ok(h)) => comparisons.push(InputComparison {
                input: name,
                synthesized_digest: s.solution_digest,
                hand_written_digest: h.solution_digest,
                both_valid: s.valid && h.valid,
                synthesized_cycles: s.cycles,
                hand_written_cycles: h.cycles,
            }),
            (s, h) => {
                if let Err(e) = s {
                    run_failures.push(format!("{name} synthesized: {e}"));
                }
                if let Err(e) = h {
                    run_failures.push(format!("{name} hand-written: {e}"));
                }
            }
        }
    }

    RepairVerification {
        algorithm,
        static_conflicts,
        dynamic_races,
        run_failures,
        comparisons,
    }
}

/// Runs one algorithm's kernels under the `IrDriven` policy on a
/// caller-provided GPU (tracing/sanitizer/mode table already armed) — the
/// synthesized-variant analogue of
/// [`crate::differential::run_traced_variant`]. Store visibility is
/// `Immediate`, matching [`run_synthesized`].
pub fn run_traced_synthesized(gpu: &mut Gpu, algorithm: Algorithm, graph: &Csr) {
    use ecl_core::{apsp, cc, gc, mis, mst, scc};
    let owned;
    let graph = if algorithm.weighted() && graph.weights().is_none() {
        owned = graph.clone().with_random_weights(1_000, 0xec1);
        &owned
    } else {
        graph
    };
    let immediate = StoreVisibility::Immediate;
    match algorithm {
        Algorithm::Apsp => drop(apsp::run_traced(gpu, graph)),
        Algorithm::Cc => drop(cc::run_traced::<IrDriven>(gpu, graph, immediate)),
        Algorithm::Gc => drop(gc::run_traced::<IrDriven, IrDriven>(gpu, graph, immediate)),
        Algorithm::Mis => drop(mis::run_traced::<IrDriven>(gpu, graph, immediate)),
        Algorithm::Mst => drop(mst::run_traced::<IrDriven>(gpu, graph, immediate)),
        Algorithm::Scc => drop(scc::run_traced::<IrDriven>(gpu, graph, immediate)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GpuConfig {
        GpuConfig::test_tiny()
    }

    #[test]
    fn synthesis_flags_the_census_groups_for_cc() {
        let r = synthesize(Algorithm::Cc, &cfg()).unwrap();
        // The union-find label races in all three compute kernels, nothing
        // else: the init kernel's owned stores stay plain.
        let kernels: BTreeSet<&str> = r.flagged.iter().map(|(k, _)| k.as_str()).collect();
        assert!(kernels.contains("cc_compute_light"));
        assert!(kernels.contains("cc_flatten"));
        assert!(!kernels.contains("cc_init"));
        assert!(r.flagged.iter().all(|(_, b)| b == "label"));
        assert!(!r.rewrites.is_empty());
        // The repair is minimal: the init store survives as a plain mode in
        // the table.
        let init = r.mode_table.get("cc_init", "label").unwrap();
        assert_eq!(init.write, AccessMode::Plain);
    }

    #[test]
    fn apsp_needs_no_repair() {
        let r = synthesize(Algorithm::Apsp, &cfg()).unwrap();
        assert!(r.flagged.is_empty());
        assert!(r.rewrites.is_empty());
        assert!(r.mode_table.is_empty());
    }

    #[test]
    fn byte_and_pair_rewrites_are_marked_masked() {
        let mis = synthesize(Algorithm::Mis, &cfg()).unwrap();
        assert!(
            mis.rewrites
                .iter()
                .any(|r| r.width == OpWidth::B1 && r.masked),
            "MIS repair should mask byte accesses: {:#?}",
            mis.rewrites
        );
        let scc = synthesize(Algorithm::Scc, &cfg()).unwrap();
        assert!(
            scc.rewrites
                .iter()
                .any(|r| r.width == OpWidth::Pair && r.masked),
            "SCC repair should mask pair accesses: {:#?}",
            scc.rewrites
        );
    }

    #[test]
    fn repaired_contracts_pass_the_static_checker() {
        for alg in Algorithm::ALL {
            let r = synthesize(alg, &cfg()).unwrap();
            let conflicts = check_contracts(&r.contracts);
            assert!(conflicts.is_empty(), "{alg}: {conflicts:#?}");
        }
    }

    #[test]
    fn mst_repair_verifies_end_to_end() {
        // One full three-oracle pass on the algorithm with the richest mix
        // of repairable shapes (64-bit reads, byte flags, union-find, flag
        // raise). The all-six sweep lives in the repair_tool/CI gate and the
        // root integration test.
        let r = synthesize(Algorithm::Mst, &cfg()).unwrap();
        let v = verify(&r, &cfg(), 0.05, 7);
        assert!(
            v.passes(),
            "static={:#?} dynamic={:#?} failures={:#?} comparisons={:#?}",
            v.static_conflicts,
            v.dynamic_races,
            v.run_failures,
            v.comparisons
        );
        assert!(v.geomean_ratio().is_finite());
    }
}
