//! Fault-injection and watchdog behaviour at the device level: the fault
//! schedule (and therefore the cycle count) is a pure function of the seeds,
//! a runaway kernel is killed by the watchdog instead of hanging the test
//! run, and the fault budget turns into a typed error.

use ecl_simt::{
    Ctx, DeviceBuffer, FaultPlan, Gpu, GpuConfig, Kernel, LaunchConfig, MemLevel, SimError, Step,
    StoreVisibility, ThreadInfo,
};

const LEN: usize = 256;
const ROUNDS: u32 = 8;

/// Every thread repeatedly volatile-loads a rotating element, accumulates,
/// and plain-stores the sum — touching all three fault classes: L2-served
/// loads (bit flips), deferred plain stores at yields (flush perturbations),
/// and multi-block scheduling (jitter).
struct MixWork {
    data: DeviceBuffer<u32>,
    out: DeviceBuffer<u32>,
}

impl Kernel for MixWork {
    type State = (u32, u32, u32);
    fn name(&self) -> &str {
        "mix_work"
    }
    fn init(&self, info: ThreadInfo) -> (u32, u32, u32) {
        (info.global_id, 0, 0)
    }
    fn step(&self, state: &mut (u32, u32, u32), ctx: &mut Ctx<'_>) -> Step {
        let (tid, ref mut round, ref mut acc) = *state;
        let v: u32 = ctx.load_volatile(self.data.at((tid as usize + *round as usize) % LEN));
        *acc = acc.wrapping_add(v);
        ctx.store(self.out.at(tid as usize % LEN), *acc);
        *round += 1;
        if *round == ROUNDS {
            Step::Done
        } else {
            Step::Yield
        }
    }
}

fn faulted_run(plan: &FaultPlan, seed: u64) -> (u64, ecl_simt::FaultReport, Vec<u32>) {
    let mut gpu = Gpu::new(GpuConfig::test_tiny());
    gpu.set_seed(seed);
    gpu.set_fault_plan(plan.clone());
    let data = gpu.alloc::<u32>(LEN);
    let out = gpu.alloc::<u32>(LEN);
    gpu.upload(&data, &(0..LEN as u32).collect::<Vec<_>>());
    gpu.launch(
        LaunchConfig {
            grid_blocks: 4,
            block_threads: 64,
            store_visibility: StoreVisibility::DeferUntilYield,
            shared_bytes: 0,
            exact_geometry: true,
        },
        MixWork { data, out },
    );
    (
        gpu.elapsed_cycles(),
        gpu.fault_report().unwrap().clone(),
        gpu.download(&out),
    )
}

#[test]
fn same_seed_gives_identical_schedule_and_cycles() {
    let plan = FaultPlan::new(0xfa_17)
        .with_bitflips(0.05, MemLevel::L2)
        .with_flush_faults(0.1, 0.1)
        .with_sched_jitter();
    let (cycles_a, report_a, out_a) = faulted_run(&plan, 9);
    let (cycles_b, report_b, out_b) = faulted_run(&plan, 9);
    assert!(
        report_a.total_injected() > 0,
        "plan should actually inject: {report_a:?}"
    );
    assert_eq!(report_a, report_b, "fault schedule must be seed-pure");
    assert_eq!(cycles_a, cycles_b, "cycle count must be seed-pure");
    assert_eq!(out_a, out_b, "corrupted output must replay bit-for-bit");
}

#[test]
fn different_plan_seed_gives_a_different_schedule() {
    let base = FaultPlan::new(1).with_bitflips(0.05, MemLevel::L2);
    let other = FaultPlan::new(2).with_bitflips(0.05, MemLevel::L2);
    let (_, report_a, out_a) = faulted_run(&base, 9);
    let (_, report_b, out_b) = faulted_run(&other, 9);
    // Same decision count (same loads), different draws.
    assert_eq!(report_a.decisions, report_b.decisions);
    assert!(
        report_a.bit_flips != report_b.bit_flips || out_a != out_b,
        "reseeding the plan should move the flips"
    );
}

/// Spins forever on a flag no thread ever writes, volatile-loading each
/// step so cycles accrue. Without a watchdog this would run until the
/// livelock bound; with one, `try_launch` must return promptly.
struct SpinOnFlag {
    flag: DeviceBuffer<u32>,
}

impl Kernel for SpinOnFlag {
    type State = ();
    fn name(&self) -> &str {
        "spin_on_flag"
    }
    fn init(&self, _: ThreadInfo) {}
    fn step(&self, _: &mut (), ctx: &mut Ctx<'_>) -> Step {
        if ctx.load_volatile::<u32>(self.flag.at(0)) == 0 {
            Step::Yield
        } else {
            Step::Done
        }
    }
}

#[test]
fn watchdog_kills_a_spinning_kernel_without_hanging() {
    let mut gpu = Gpu::new(GpuConfig::test_tiny());
    gpu.set_watchdog(Some(10_000));
    let flag = gpu.alloc::<u32>(1);
    let outcome = gpu.try_launch(
        LaunchConfig {
            grid_blocks: 1,
            block_threads: 32,
            store_visibility: StoreVisibility::Immediate,
            shared_bytes: 0,
            exact_geometry: true,
        },
        SpinOnFlag { flag },
    );
    match outcome {
        Err(SimError::WatchdogTimeout {
            kernel,
            budget_cycles,
            elapsed_cycles,
        }) => {
            assert_eq!(kernel, "spin_on_flag");
            assert_eq!(budget_cycles, 10_000);
            assert!(elapsed_cycles > budget_cycles);
        }
        other => panic!("expected WatchdogTimeout, got {other:?}"),
    }
    // The device is still usable: the failed launch was not recorded.
    assert_eq!(gpu.run_stats().num_launches(), 0);
    gpu.set_watchdog(None);
    gpu.upload(&flag, &[1]);
    let stats = gpu.try_launch(
        LaunchConfig {
            grid_blocks: 1,
            block_threads: 32,
            store_visibility: StoreVisibility::Immediate,
            shared_bytes: 0,
            exact_geometry: true,
        },
        SpinOnFlag { flag },
    );
    assert!(stats.is_ok());
}

#[test]
fn fault_budget_surfaces_as_a_typed_error() {
    let mut gpu = Gpu::new(GpuConfig::test_tiny());
    gpu.set_fault_plan(
        FaultPlan::new(3)
            .with_bitflips(1.0, MemLevel::L2)
            .with_max_faults(4),
    );
    let data = gpu.alloc::<u32>(LEN);
    let out = gpu.alloc::<u32>(LEN);
    let outcome = gpu.try_launch(
        LaunchConfig {
            grid_blocks: 2,
            block_threads: 64,
            store_visibility: StoreVisibility::Immediate,
            shared_bytes: 0,
            exact_geometry: true,
        },
        MixWork { data, out },
    );
    match outcome {
        Err(SimError::FaultBudgetExhausted { kernel, budget }) => {
            assert_eq!(kernel, "mix_work");
            assert_eq!(budget, 4);
        }
        other => panic!("expected FaultBudgetExhausted, got {other:?}"),
    }
}

#[test]
fn launch_panic_carries_the_typed_message() {
    // The panicking `launch` wrapper must keep the typed error's text so
    // #[should_panic(expected = ...)] call sites stay meaningful.
    let err = ecl_simt::catch_any(|| {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        gpu.set_watchdog(Some(1));
        let flag = gpu.alloc::<u32>(1);
        gpu.launch(
            LaunchConfig {
                grid_blocks: 1,
                block_threads: 1,
                store_visibility: StoreVisibility::Immediate,
                shared_bytes: 0,
                exact_geometry: true,
            },
            SpinOnFlag { flag },
        );
    })
    .unwrap_err();
    assert!(err.contains("watchdog"), "got: {err}");
}
