//! Additional execution-model tests: visibility-policy edge cases, store
//! buffer behaviour, split accesses, and launch geometry.

use ecl_simt::{
    Ctx, ForEach, Gpu, GpuConfig, Kernel, LaunchConfig, Step, StoreVisibility, ThreadInfo,
};

fn single_thread_launch(visibility: StoreVisibility) -> LaunchConfig {
    LaunchConfig {
        grid_blocks: 1,
        block_threads: 1,
        store_visibility: visibility,
        shared_bytes: 0,
        exact_geometry: true,
    }
}

#[test]
fn defer_bounded_zero_eighths_behaves_like_immediate() {
    // eighths = 0: no address is deferred; another thread polling sees the
    // store after the writer's first step.
    let observed = cross_thread_visibility_rounds(StoreVisibility::DeferBounded {
        every: 4,
        eighths: 0,
    });
    let immediate = cross_thread_visibility_rounds(StoreVisibility::Immediate);
    assert_eq!(observed, immediate);
}

#[test]
fn defer_bounded_full_eighths_delays_visibility() {
    let deferred = cross_thread_visibility_rounds(StoreVisibility::DeferBounded {
        every: 4,
        eighths: 8,
    });
    let immediate = cross_thread_visibility_rounds(StoreVisibility::Immediate);
    assert!(
        deferred > immediate,
        "full deferral ({deferred} polls) must be slower than immediate ({immediate})"
    );
}

/// Thread 0 writes a plain flag once; thread 1 polls it with volatile loads.
/// Returns how many polls thread 1 needed.
fn cross_thread_visibility_rounds(visibility: StoreVisibility) -> u32 {
    struct WriterPoller {
        cell: ecl_simt::DeviceBuffer<u32>,
        polls: ecl_simt::DeviceBuffer<u32>,
    }
    impl Kernel for WriterPoller {
        type State = (u32, u32);
        fn name(&self) -> &str {
            "writer_poller"
        }
        fn init(&self, info: ThreadInfo) -> (u32, u32) {
            (info.global_id, 0)
        }
        fn step(&self, state: &mut (u32, u32), ctx: &mut Ctx<'_>) -> Step {
            let (tid, ref mut stage) = *state;
            if tid == 0 {
                if *stage == 0 {
                    ctx.store(self.cell.at(0), 1);
                    state.1 = 1;
                    return Step::Yield;
                }
                // Keep yielding so the deferred store only drains on the
                // policy's schedule, until the poller has seen it.
                if ctx.load_volatile(self.polls.at(1)) == u32::MAX {
                    return Step::Done;
                }
                state.1 += 1;
                if state.1 > 64 {
                    return Step::Done; // safety valve
                }
                Step::Yield
            } else {
                state.1 += 1;
                if ctx.load_volatile(self.cell.at(0)) == 1 {
                    ctx.store_volatile(self.polls.at(0), state.1);
                    ctx.store_volatile(self.polls.at(1), u32::MAX);
                    Step::Done
                } else {
                    Step::Yield
                }
            }
        }
    }
    let mut gpu = Gpu::new(GpuConfig::test_tiny());
    let cell = gpu.alloc::<u32>(1);
    let polls = gpu.alloc::<u32>(2);
    gpu.launch(
        LaunchConfig {
            grid_blocks: 1,
            block_threads: 2,
            store_visibility: visibility,
            shared_bytes: 0,
            exact_geometry: true,
        },
        WriterPoller { cell, polls },
    );
    gpu.download(&polls)[0]
}

#[test]
fn store_buffer_overflow_drains_oldest() {
    // More distinct deferred stores than the buffer holds: the oldest must
    // still land in memory by the time the thread finishes.
    let mut gpu = Gpu::new(GpuConfig::test_tiny());
    let buf = gpu.alloc::<u32>(128);
    gpu.launch(
        single_thread_launch(StoreVisibility::DeferUntilDone),
        ForEach::new("many_stores", 128, move |ctx, i| {
            ctx.store(buf.at(i as usize), i + 1);
        })
        .with_chunk(128),
    );
    let host = gpu.download(&buf);
    for (i, &v) in host.iter().enumerate() {
        assert_eq!(v, i as u32 + 1);
    }
}

#[test]
fn volatile_64bit_also_tears_on_32bit_hardware() {
    // The paper's §II-A point: volatile does NOT prevent word tearing.
    let mut cfg = GpuConfig::test_tiny();
    cfg.native_64bit = false;
    let mut gpu = Gpu::new(cfg);
    let cell = gpu.alloc::<u64>(1);
    gpu.upload(&cell, &[u64::MAX]);
    // Functional check: a volatile 64-bit store still lands completely
    // (both halves are immediate), but it costs two volatile transactions.
    gpu.launch(
        single_thread_launch(StoreVisibility::Immediate),
        ForEach::new("v64", 1, move |ctx, _| {
            ctx.store_volatile(cell.at(0), 0x1111_2222_3333_4444u64);
        }),
    );
    assert_eq!(gpu.download(&cell)[0], 0x1111_2222_3333_4444);
    let stats = gpu.last_stats().unwrap();
    assert_eq!(stats.volatile_accesses, 2, "split into two 32-bit stores");
}

#[test]
fn native_64bit_volatile_is_one_access() {
    let mut gpu = Gpu::new(GpuConfig::test_tiny()); // native_64bit = true
    let cell = gpu.alloc::<u64>(1);
    gpu.launch(
        single_thread_launch(StoreVisibility::Immediate),
        ForEach::new("v64n", 1, move |ctx, _| {
            ctx.store_volatile(cell.at(0), 7u64);
        }),
    );
    assert_eq!(gpu.last_stats().unwrap().volatile_accesses, 1);
}

#[test]
fn foreach_with_zero_work_per_thread_finishes() {
    // More threads than items: surplus threads must exit immediately.
    let mut gpu = Gpu::new(GpuConfig::test_tiny());
    let buf = gpu.alloc::<u32>(4);
    gpu.launch(
        LaunchConfig {
            grid_blocks: 2,
            block_threads: 256,
            store_visibility: StoreVisibility::Immediate,
            shared_bytes: 0,
            exact_geometry: true,
        },
        ForEach::new("sparse", 4, move |ctx, i| ctx.store(buf.at(i as usize), 9)),
    );
    assert_eq!(gpu.download(&buf), vec![9; 4]);
}

#[test]
fn atomic_u64_min_max_and_cas() {
    let mut gpu = Gpu::new(GpuConfig::test_tiny());
    let buf = gpu.alloc::<u64>(3);
    gpu.upload(&buf, &[u64::MAX, 0, 10]);
    gpu.launch(
        single_thread_launch(StoreVisibility::Immediate),
        ForEach::new("ops64", 1, move |ctx, _| {
            ctx.atomic_min_u64(buf.at(0), 5);
            ctx.atomic_min_u64(buf.at(0), 9); // no effect
            ctx.atomic_add_u64(buf.at(1), 1 << 40);
            let old = ctx.atomic_cas_u64(buf.at(2), 10, 11);
            assert_eq!(old, 10);
            let old = ctx.atomic_cas_u64(buf.at(2), 10, 12); // fails
            assert_eq!(old, 11);
        }),
    );
    assert_eq!(gpu.download(&buf), vec![5, 1 << 40, 11]);
}

#[test]
fn compute_charges_cycles() {
    let mut gpu = Gpu::new(GpuConfig::test_tiny());
    gpu.launch(
        single_thread_launch(StoreVisibility::Immediate),
        ForEach::new("spin", 1, move |ctx, _| ctx.compute(10_000)),
    );
    let busy = gpu.elapsed_cycles();
    assert!(busy >= 10_000, "compute cycles not charged: {busy}");
}

#[test]
fn threadfence_publishes_deferred_stores() {
    // Writer defers its store, fences, then spins; the fence makes the
    // value visible to the polling thread even under full deferral.
    struct FenceKernel {
        cell: ecl_simt::DeviceBuffer<u32>,
        seen: ecl_simt::DeviceBuffer<u32>,
    }
    impl Kernel for FenceKernel {
        type State = (u32, bool);
        fn name(&self) -> &str {
            "fence"
        }
        fn init(&self, info: ThreadInfo) -> (u32, bool) {
            (info.global_id, false)
        }
        fn step(&self, state: &mut (u32, bool), ctx: &mut Ctx<'_>) -> Step {
            let (tid, done_write) = *state;
            if tid == 0 {
                if !done_write {
                    ctx.store(self.cell.at(0), 77);
                    ctx.threadfence();
                    state.1 = true;
                }
                // Wait for the reader so the kernel-end drain can't be what
                // published the value.
                if ctx.load_volatile(self.seen.at(0)) == 77 {
                    Step::Done
                } else {
                    Step::Yield
                }
            } else {
                let v = ctx.load_volatile(self.cell.at(0));
                if v == 77 {
                    ctx.store_volatile(self.seen.at(0), v);
                    Step::Done
                } else {
                    Step::Yield
                }
            }
        }
    }
    let mut gpu = Gpu::new(GpuConfig::test_tiny());
    let cell = gpu.alloc::<u32>(1);
    let seen = gpu.alloc::<u32>(1);
    gpu.launch(
        LaunchConfig {
            grid_blocks: 1,
            block_threads: 2,
            store_visibility: StoreVisibility::DeferUntilDone,
            shared_bytes: 0,
            exact_geometry: true,
        },
        FenceKernel { cell, seen },
    );
    assert_eq!(gpu.download(&seen)[0], 77);
}

#[test]
#[should_panic(expected = "livelocked")]
fn livelock_is_detected() {
    struct Forever;
    impl Kernel for Forever {
        type State = ();
        fn name(&self) -> &str {
            "forever"
        }
        fn init(&self, _: ThreadInfo) {}
        fn step(&self, _: &mut (), _: &mut Ctx<'_>) -> Step {
            Step::Yield
        }
    }
    let mut gpu = Gpu::new(GpuConfig::test_tiny());
    gpu.launch(single_thread_launch(StoreVisibility::Immediate), Forever);
}

#[test]
fn expired_wall_deadline_kills_a_running_launch() {
    // A would-be livelock dies with a typed DeadlineExceeded long before the
    // livelock round limit: the wall-clock deadline is the host's real-time
    // bound on a launch, independent of simulated cycles.
    struct Forever;
    impl Kernel for Forever {
        type State = ();
        fn name(&self) -> &str {
            "forever"
        }
        fn init(&self, _: ThreadInfo) {}
        fn step(&self, _: &mut (), _: &mut Ctx<'_>) -> Step {
            Step::Yield
        }
    }
    let mut gpu = Gpu::new(GpuConfig::test_tiny());
    gpu.set_deadline(Some(std::time::Instant::now()));
    let r = gpu.try_launch(single_thread_launch(StoreVisibility::Immediate), Forever);
    assert!(matches!(
        r,
        Err(ecl_simt::SimError::DeadlineExceeded { .. })
    ));
}

#[test]
fn deadline_does_not_perturb_a_run_that_finishes_in_time() {
    let run = |deadline: Option<std::time::Instant>| -> (Vec<u32>, u64) {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        gpu.set_deadline(deadline);
        let buf = gpu.alloc::<u32>(128);
        gpu.launch(
            LaunchConfig::for_items(128),
            ForEach::new("w", 128, move |ctx, i| ctx.store(buf.at(i as usize), i * 7)),
        );
        (gpu.download(&buf), gpu.elapsed_cycles())
    };
    let far = std::time::Instant::now() + std::time::Duration::from_secs(3600);
    assert_eq!(run(None), run(Some(far)));
}
