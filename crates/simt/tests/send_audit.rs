//! Thread-safety audit for the types the parallel sweep runner moves across
//! worker threads.
//!
//! The bench crate's work pool (`ecl-bench::pool`) runs whole simulations on
//! scoped worker threads: the *inputs* (GPU configs, fault plans, graphs)
//! are shared by reference and the *outputs* (stats, errors) are sent back
//! to the reassembly thread. These assertions pin down, at compile time,
//! that every type crossing that boundary is `Send` (and the shared ones
//! `Sync`) — so a future `Rc`/`RefCell` slipping into one of them becomes a
//! build failure here rather than a trait-bound error three crates away.

use ecl_simt::metrics::RunStats;
use ecl_simt::{
    AccessEvent, DeviceBuffer, DevicePtr, FaultPlan, FaultReport, GpuConfig, KernelStats, SimError,
    Trace,
};

fn assert_send<T: Send>() {}
fn assert_sync<T: Sync>() {}
fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn sweep_inputs_are_shareable_across_workers() {
    // Shared by `&` from the sweep driver into every worker.
    assert_send_sync::<GpuConfig>();
    assert_send_sync::<FaultPlan>();
}

#[test]
fn sweep_outputs_are_sendable_back() {
    // Produced on a worker thread, moved to the main thread for reassembly.
    assert_send::<SimError>();
    assert_sync::<SimError>();
    assert_send::<KernelStats>();
    assert_send::<RunStats>();
    assert_send::<FaultReport>();
    assert_send::<Trace>();
    assert_send::<AccessEvent>();
}

#[test]
fn device_handles_are_plain_indices() {
    // `DevicePtr` carries a `PhantomData<*const T>` purely for variance; it
    // is an index into a per-`Gpu` arena, not a real pointer, and is
    // explicitly `Send + Sync` so kernels built on one thread can run on
    // another worker's simulation.
    assert_send_sync::<DevicePtr<u32>>();
    assert_send_sync::<DeviceBuffer<u64>>();
}
