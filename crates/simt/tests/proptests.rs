//! Property-based tests for the simulator: functional correctness of the
//! memory system, atomics, compiler model, and scheduler under arbitrary
//! programs and seeds.

use ecl_simt::{ForEach, Gpu, GpuConfig, LaunchConfig, StoreVisibility};
use proptest::prelude::*;

fn any_visibility() -> impl Strategy<Value = StoreVisibility> {
    prop_oneof![
        Just(StoreVisibility::Immediate),
        Just(StoreVisibility::DeferUntilYield),
        (1u32..5, 0u8..=8)
            .prop_map(|(every, eighths)| StoreVisibility::DeferBounded { every, eighths }),
        Just(StoreVisibility::DeferUntilDone),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the visibility policy and seed, a kernel's stores are all
    /// in memory once the launch returns (the kernel boundary drains every
    /// buffer) — the implicit inter-launch barrier.
    #[test]
    fn stores_always_visible_after_launch(
        visibility in any_visibility(),
        seed in any::<u64>(),
        len in 1usize..2000,
    ) {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        gpu.set_seed(seed);
        let buf = gpu.alloc::<u32>(len);
        let n = len as u32;
        gpu.launch(
            LaunchConfig::for_items(n).with_visibility(visibility),
            ForEach::new("w", n, move |ctx, i| ctx.store(buf.at(i as usize), i ^ 0xabc)),
        );
        let host = gpu.download(&buf);
        for (i, &v) in host.iter().enumerate() {
            prop_assert_eq!(v, (i as u32) ^ 0xabc);
        }
    }

    /// Atomic counters count exactly, under every policy and seed.
    #[test]
    fn atomic_add_is_exact(
        visibility in any_visibility(),
        seed in any::<u64>(),
        n in 1u32..3000,
    ) {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        gpu.set_seed(seed);
        let counter = gpu.alloc::<u32>(1);
        gpu.launch(
            LaunchConfig::for_items(n).with_visibility(visibility),
            ForEach::new("count", n, move |ctx, _| {
                ctx.atomic_add_u32(counter.at(0), 1);
            }),
        );
        prop_assert_eq!(gpu.download(&counter)[0], n);
    }

    /// atomicMin over arbitrary values finds the true minimum.
    #[test]
    fn atomic_min_finds_minimum(values in prop::collection::vec(any::<u64>(), 1..500)) {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let data = gpu.alloc::<u64>(values.len());
        gpu.upload(&data, &values);
        let min = gpu.alloc::<u64>(1);
        gpu.write_scalar(&min, 0, u64::MAX);
        let n = values.len() as u32;
        gpu.launch(
            LaunchConfig::for_items(n),
            ForEach::new("min", n, move |ctx, i| {
                let v = ctx.load(data.at(i as usize));
                ctx.atomic_min_u64(min.at(0), v);
            }),
        );
        prop_assert_eq!(gpu.download(&min)[0], values.iter().copied().min().unwrap());
    }

    /// Simulated cycles are deterministic for a fixed seed, and memory
    /// results never depend on the seed.
    #[test]
    fn determinism_and_seed_independence(seed_a in any::<u64>(), seed_b in any::<u64>()) {
        let run = |seed: u64| {
            let mut gpu = Gpu::new(GpuConfig::test_tiny());
            gpu.set_seed(seed);
            let buf = gpu.alloc::<u32>(512);
            let sum = gpu.alloc::<u32>(1);
            gpu.launch(
                LaunchConfig::for_items(512),
                ForEach::new("k", 512, move |ctx, i| {
                    ctx.store(buf.at(i as usize), i * 3);
                    ctx.atomic_add_u32(sum.at(0), i);
                }),
            );
            (gpu.download(&buf), gpu.download(&sum)[0], gpu.elapsed_cycles())
        };
        let (mem_a, sum_a, cyc_a) = run(seed_a);
        let (mem_a2, sum_a2, cyc_a2) = run(seed_a);
        let (mem_b, sum_b, _) = run(seed_b);
        prop_assert_eq!(&mem_a, &mem_a2);
        prop_assert_eq!(sum_a, sum_a2);
        prop_assert_eq!(cyc_a, cyc_a2);
        prop_assert_eq!(&mem_a, &mem_b);
        prop_assert_eq!(sum_a, sum_b);
    }

    /// Byte-granular stores never disturb their neighbors, across widths
    /// and policies.
    #[test]
    fn mixed_width_stores_do_not_interfere(
        visibility in any_visibility(),
        bytes in prop::collection::vec(any::<u8>(), 16..64),
    ) {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let buf = gpu.alloc::<u8>(bytes.len());
        let host = bytes.clone();
        let n = bytes.len() as u32;
        gpu.launch(
            LaunchConfig::for_items(n).with_visibility(visibility),
            ForEach::new("bytes", n, move |ctx, i| {
                ctx.store(buf.at(i as usize), host[i as usize]);
            }),
        );
        prop_assert_eq!(gpu.download(&buf), bytes);
    }

    /// The cost model is sane: every access costs at least one cycle, and
    /// kernels with more work cost more.
    #[test]
    fn more_work_costs_more_cycles(n in 64u32..512) {
        let time = |items: u32| {
            let mut gpu = Gpu::new(GpuConfig::test_tiny());
            let buf = gpu.alloc::<u32>(items as usize);
            gpu.launch(
                LaunchConfig {
                    grid_blocks: 1,
                    block_threads: 1,
                    store_visibility: StoreVisibility::Immediate,
                    shared_bytes: 0,
                    exact_geometry: true,
                },
                ForEach::new("w", items, move |ctx, i| ctx.store(buf.at(i as usize), i)),
            );
            gpu.elapsed_cycles()
        };
        prop_assert!(time(2 * n) > time(n));
    }
}
