//! Typed simulator errors and the panic-boundary plumbing that carries them
//! out of deeply nested kernel code.
//!
//! The simulator's execution core reports launch failures two ways:
//!
//! 1. **Control-flow errors** (watchdog, livelock, barrier divergence, fault
//!    budget) are detected by the scheduler loop and returned as
//!    `Result::Err` directly — no panic involved.
//! 2. **Data-path errors** (an out-of-bounds device access) are detected in
//!    the middle of a `Ctx` memory operation, far below any `Result` return
//!    path, and would otherwise abort the process. [`raise`] stashes the
//!    typed error in a thread-local and unwinds; [`catch_sim`] (and
//!    [`crate::Gpu::try_launch`], which uses it) catches the unwind and
//!    converts it back into a typed `Err`.
//!
//! Panics that are *not* simulator errors (a kernel's own `assert!`, index
//! bugs in host code) pass through [`catch_sim`] untouched via
//! `resume_unwind`, so `#[should_panic]` tests and real bugs keep their
//! original messages.

use crate::access::AccessKind;
use std::cell::{Cell, RefCell};
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

/// A launch-level simulator failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The launch exceeded its per-launch cycle budget (hung or runaway
    /// kernel). See [`crate::Gpu::set_watchdog`].
    WatchdogTimeout {
        /// Kernel name.
        kernel: String,
        /// The configured budget, in cycles.
        budget_cycles: u64,
        /// Cycles the busiest SM had accumulated when the watchdog fired.
        elapsed_cycles: u64,
    },
    /// A device thread accessed memory outside the allocated arena (or its
    /// block's shared-memory window).
    OutOfBounds {
        /// Kernel name.
        kernel: String,
        /// The faulting byte address.
        addr: u32,
        /// What the access was doing (load / store / rmw).
        access: AccessKind,
    },
    /// The fault-injection plan hit its configured maximum number of
    /// injected faults (see [`crate::fault::FaultPlan::with_max_faults`]).
    FaultBudgetExhausted {
        /// Kernel name.
        kernel: String,
        /// The configured budget.
        budget: u64,
    },
    /// The scheduler ran an implausible number of rounds without any thread
    /// finishing: some thread is spinning on a value no other thread will
    /// ever write.
    Livelock {
        /// Kernel name.
        kernel: String,
        /// Rounds executed before giving up.
        rounds: u64,
    },
    /// A thread exited while its block siblings waited at a barrier —
    /// undefined behavior on real hardware.
    BarrierDivergence {
        /// Kernel name.
        kernel: String,
        /// The diverging block.
        block: u32,
    },
    /// The host-side wall-clock deadline expired while the launch was still
    /// running (see [`crate::Gpu::set_deadline`]). Unlike the cycle-budget
    /// watchdog this is a *real-time* bound: isolated sweep workers arm it
    /// from their cell budget so a runaway launch dies as a typed error
    /// before the parent has to SIGKILL the whole process.
    DeadlineExceeded {
        /// Kernel name.
        kernel: String,
    },
    /// A device access fell outside the kernel's declared access contract
    /// while the sanitizer was armed (see [`crate::Gpu::install_contracts`]).
    ContractViolation {
        /// Kernel name.
        kernel: String,
        /// The where/what of the violation, boxed so the happy-path
        /// `Result` size stays small (the detail carries three strings).
        detail: Box<ContractViolationDetail>,
    },
}

/// The payload of a [`SimError::ContractViolation`]: everything needed to
/// act on a sanitizer failure without a debugger — which kernel, which
/// buffer, and the offending access as typed fields (space, mode, kind,
/// element offset) rather than a pre-baked string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContractViolationDetail {
    /// Kernel the violating access occurred in.
    pub kernel: String,
    /// The faulting thread's global id.
    pub thread: u32,
    /// The faulting byte address (a byte offset for shared memory).
    pub addr: u32,
    /// Name of the buffer touched (or `?` when unresolvable).
    pub buffer: String,
    /// Address space of the access.
    pub space: crate::trace::Space,
    /// Access mode the faulting operation issued.
    pub mode: crate::access::AccessMode,
    /// What the faulting operation did (load/store/RMW).
    pub kind: AccessKind,
    /// Byte offset of the access within the buffer, when the address
    /// resolved to a named allocation (`None` for stray addresses).
    pub offset: Option<u32>,
    /// The declared footprint the access was checked against.
    pub declared: String,
}

impl std::fmt::Display for ContractViolationDetail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "kernel '{}': {:?} {:?} on {:?} '{}' at {:#x}",
            self.kernel, self.mode, self.kind, self.space, self.buffer, self.addr
        )?;
        if let Some(off) = self.offset {
            write!(f, " (byte offset {off})")?;
        }
        write!(
            f,
            " by thread {}, but the declared footprint is: {}",
            self.thread, self.declared
        )
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::WatchdogTimeout {
                kernel,
                budget_cycles,
                elapsed_cycles,
            } => write!(
                f,
                "kernel '{kernel}' exceeded its watchdog budget of {budget_cycles} cycles \
                 ({elapsed_cycles} elapsed): killed"
            ),
            SimError::OutOfBounds {
                kernel,
                addr,
                access,
            } => write!(
                f,
                "kernel '{kernel}': out-of-bounds {access:?} at device address {addr:#x}"
            ),
            SimError::FaultBudgetExhausted { kernel, budget } => write!(
                f,
                "kernel '{kernel}': fault budget exhausted ({budget} injected faults)"
            ),
            SimError::Livelock { kernel, rounds } => write!(
                f,
                "kernel '{kernel}' exceeded {rounds} scheduler rounds: livelocked \
                 (a thread is spinning on a value no other thread will write)"
            ),
            SimError::BarrierDivergence { kernel, block } => write!(
                f,
                "kernel '{kernel}': block {block} reached a barrier while sibling threads \
                 already exited (barrier divergence, undefined behavior on a GPU)"
            ),
            SimError::DeadlineExceeded { kernel } => write!(
                f,
                "kernel '{kernel}': host wall-clock deadline expired mid-launch: killed"
            ),
            SimError::ContractViolation { detail, .. } => {
                write!(f, "access contract violation: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}

thread_local! {
    /// The typed error carried across a panic unwind, if any.
    static STASHED: RefCell<Option<SimError>> = const { RefCell::new(None) };
    /// Nesting depth of active [`catch_sim`] regions on this thread; the
    /// panic hook stays quiet for simulator-error panics inside a region.
    static CATCH_DEPTH: Cell<u32> = const { Cell::new(0) };
    /// Nesting depth of active [`catch_any`] regions, where ALL panic
    /// printing is suppressed (crashes are expected data there).
    static SUPPRESS_ALL: Cell<u32> = const { Cell::new(0) };
}

static HOOK: Once = Once::new();

/// Installs (once, process-wide) a panic hook that suppresses the default
/// "thread panicked" report for panics that carry a stashed [`SimError`] and
/// will be caught by an enclosing [`catch_sim`]. All other panics print as
/// usual.
fn install_hook() {
    HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let quiet = SUPPRESS_ALL.with(|d| d.get()) > 0
                || (CATCH_DEPTH.with(|d| d.get()) > 0 && STASHED.with(|s| s.borrow().is_some()));
            if !quiet {
                previous(info);
            }
        }));
    });
}

/// Stashes a typed error for the enclosing [`catch_sim`] region (if any) to
/// pick up after an unwind. Used by [`crate::Gpu::launch`] so the typed
/// error survives its panic, and by [`raise`].
pub(crate) fn stash(e: SimError) {
    STASHED.with(|s| *s.borrow_mut() = Some(e));
}

fn take_stashed() -> Option<SimError> {
    STASHED.with(|s| s.borrow_mut().take())
}

/// Raises a typed simulator error from deep inside kernel execution by
/// stashing it and unwinding. Must only be called under a [`catch_sim`]
/// region (all kernel code runs under [`crate::Gpu::try_launch`], which
/// provides one).
pub(crate) fn raise(e: SimError) -> ! {
    stash(e.clone());
    // The payload also carries the message so a `raise` that somehow escapes
    // every catch region still identifies itself.
    panic::panic_any(e.to_string());
}

/// Runs `f`, converting a simulator-error unwind back into `Err(SimError)`.
///
/// Panics that do not carry a [`SimError`] (ordinary bugs, kernel asserts)
/// are propagated unchanged with `resume_unwind`. Nested regions are fine:
/// the innermost catch wins.
///
/// This is what lets a suite runner execute a whole algorithm — dozens of
/// internal `Gpu::launch` calls it does not control — and still observe a
/// watchdog timeout or out-of-bounds fault as a typed error:
///
/// ```
/// use ecl_simt::{catch_sim, ForEach, Gpu, GpuConfig, LaunchConfig, SimError};
///
/// let mut gpu = Gpu::new(GpuConfig::test_tiny());
/// gpu.set_watchdog(Some(1));
/// let buf = gpu.alloc::<u32>(64);
/// let outcome = catch_sim(|| {
///     gpu.launch(
///         LaunchConfig::for_items(64),
///         ForEach::new("w", 64, move |ctx, i| ctx.store(buf.at(i as usize), i)),
///     );
/// });
/// assert!(matches!(outcome, Err(SimError::WatchdogTimeout { .. })));
/// ```
pub fn catch_sim<T>(f: impl FnOnce() -> T) -> Result<T, SimError> {
    install_hook();
    let _ = take_stashed();
    CATCH_DEPTH.with(|d| d.set(d.get() + 1));
    let outcome = panic::catch_unwind(AssertUnwindSafe(f));
    CATCH_DEPTH.with(|d| d.set(d.get() - 1));
    match outcome {
        Ok(v) => Ok(v),
        Err(payload) => match take_stashed() {
            Some(e) => Err(e),
            None => panic::resume_unwind(payload),
        },
    }
}

/// Runs `f`, converting *any* panic — a typed [`SimError`] or an ordinary
/// one — into an error message. Unlike [`catch_sim`], nothing propagates and
/// nothing is printed: inside the region, crashes are expected data, not
/// bugs. This is the contract a resilient suite runner needs — a fault plan
/// can corrupt an index before it is used in host code, and that crash must
/// become a retriable outcome rather than a process abort.
pub fn catch_any<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    install_hook();
    let _ = take_stashed();
    SUPPRESS_ALL.with(|d| d.set(d.get() + 1));
    let outcome = panic::catch_unwind(AssertUnwindSafe(f));
    SUPPRESS_ALL.with(|d| d.set(d.get() - 1));
    match outcome {
        Ok(v) => Ok(v),
        Err(payload) => Err(match take_stashed() {
            Some(e) => e.to_string(),
            None => payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "panicked with a non-string payload".to_string()),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_texts_are_stable() {
        // Existing #[should_panic(expected = "livelocked")] tests key on
        // these substrings; keep them stable.
        let e = SimError::Livelock {
            kernel: "spin".into(),
            rounds: 4_000_000,
        };
        assert!(e.to_string().contains("livelocked"));
        let e = SimError::BarrierDivergence {
            kernel: "b".into(),
            block: 3,
        };
        assert!(e.to_string().contains("barrier divergence"));
        let e = SimError::WatchdogTimeout {
            kernel: "w".into(),
            budget_cycles: 10,
            elapsed_cycles: 11,
        };
        assert!(e.to_string().contains("watchdog"));
        let e = SimError::DeadlineExceeded { kernel: "d".into() };
        assert!(e.to_string().contains("deadline"));
        let e = SimError::ContractViolation {
            kernel: "c".into(),
            detail: Box::new(ContractViolationDetail {
                kernel: "c".into(),
                thread: 3,
                addr: 0x100,
                buffer: "label".into(),
                space: crate::trace::Space::Global,
                mode: crate::access::AccessMode::Volatile,
                kind: AccessKind::Store,
                offset: Some(256),
                declared: "Plain Store label [arbitrary]".into(),
            }),
        };
        let text = e.to_string();
        assert!(text.contains("contract violation"));
        // The payload's own Display carries the actionable fields: kernel,
        // buffer, and the offending access (space, mode, kind, offset).
        for needle in [
            "kernel 'c'",
            "'label'",
            "Global",
            "Volatile",
            "Store",
            "byte offset 256",
            "thread 3",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in: {text}");
        }
    }

    #[test]
    fn catch_sim_returns_value() {
        assert_eq!(catch_sim(|| 41 + 1), Ok(42));
    }

    #[test]
    fn catch_sim_catches_raised_errors() {
        let r: Result<(), _> = catch_sim(|| {
            raise(SimError::OutOfBounds {
                kernel: "k".into(),
                addr: 0xdead,
                access: AccessKind::Load,
            })
        });
        assert_eq!(
            r,
            Err(SimError::OutOfBounds {
                kernel: "k".into(),
                addr: 0xdead,
                access: AccessKind::Load,
            })
        );
    }

    #[test]
    fn catch_sim_passes_other_panics_through() {
        let caught = std::panic::catch_unwind(|| {
            let _: Result<(), _> = catch_sim(|| panic!("ordinary bug"));
        });
        let payload = caught.unwrap_err();
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "ordinary bug");
    }

    #[test]
    fn catch_any_reports_both_kinds() {
        let sim: Result<(), _> = catch_any(|| {
            raise(SimError::WatchdogTimeout {
                kernel: "w".into(),
                budget_cycles: 5,
                elapsed_cycles: 9,
            })
        });
        assert!(sim.unwrap_err().contains("watchdog"));
        let host: Result<(), _> = catch_any(|| panic!("index 9 out of range"));
        assert_eq!(host.unwrap_err(), "index 9 out of range");
        assert_eq!(catch_any(|| 7), Ok(7));
    }

    #[test]
    fn nested_catch_innermost_wins() {
        let outer: Result<Result<(), SimError>, SimError> = catch_sim(|| {
            catch_sim(|| {
                raise(SimError::Livelock {
                    kernel: "n".into(),
                    rounds: 1,
                })
            })
        });
        assert!(matches!(outer, Ok(Err(SimError::Livelock { .. }))));
    }
}
