//! Classification of memory accesses.

/// How an access is performed, determining both its cost and its visibility.
///
/// This mirrors the three ways the studied CUDA codes touch shared data
/// (paper §II/§IV):
///
/// - `Plain` — an ordinary load/store. Served by the per-SM L1; stores may be
///   deferred/coalesced by the compiler model. Racy when shared.
/// - `Volatile` — a `volatile`-qualified access. Compiles to an actual memory
///   instruction that bypasses the non-coherent L1 (like `ld.global.cg`);
///   immediately visible, but still a data race per the CUDA memory model.
/// - `Atomic` — a relaxed atomic access from `libcu++` (`cuda::atomic`).
///   Performed at the L2 coherence point with an extra RMW charge; race-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// Ordinary load/store (register-cacheable, deferrable).
    Plain,
    /// `volatile` access: uncached in L1, immediate, still racy.
    Volatile,
    /// Relaxed atomic access: coherent and race-free.
    Atomic,
}

impl AccessMode {
    /// `true` for accesses that participate in data races (everything except
    /// atomics — the CUDA memory model makes `volatile` accesses racy too).
    pub fn is_racy(self) -> bool {
        !matches!(self, AccessMode::Atomic)
    }
}

/// `libcu++` memory-ordering constraints (paper §II-A).
///
/// The order restricts how surrounding accesses may be reordered around an
/// atomic operation. *Relaxed* is the weakest (and what all the converted
/// ECL codes use — "the weakest version that is sufficient for correctness
/// should be used to maximize performance"); *SeqCst* is the strongest and
/// is `libcu++`'s **default**, which the paper warns "can lead to poor
/// performance".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemOrder {
    /// No ordering constraints: the atomic is just a coherent access.
    #[default]
    Relaxed,
    /// Later accesses may not move before this load.
    Acquire,
    /// Earlier accesses may not move after this store.
    Release,
    /// Acquire + release (RMW operations).
    AcqRel,
    /// Total order over all such operations — the expensive default.
    SeqCst,
}

impl MemOrder {
    /// How many memory-fence charges this ordering implies in the cost
    /// model (0 for relaxed, 1 for acquire/release, 2 for acq_rel/seq_cst).
    pub fn fence_count(self) -> u32 {
        match self {
            MemOrder::Relaxed => 0,
            MemOrder::Acquire | MemOrder::Release => 1,
            MemOrder::AcqRel | MemOrder::SeqCst => 2,
        }
    }
}

/// `libcu++` thread scopes (paper §II-A).
///
/// The scope determines which threads an atomic operation must be coherent
/// with, and therefore where the hardware can service it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scope {
    /// `cuda::thread_scope_block`: only threads of the same block — the
    /// operation can be serviced in the SM's own L1/shared-memory fabric.
    Block,
    /// `cuda::thread_scope_device`: all threads on the GPU — serviced at
    /// the L2 coherence point. The scope all converted ECL codes use.
    #[default]
    Device,
    /// `cuda::thread_scope_system`: host threads and other devices too —
    /// requires system-level coherence and is the most expensive.
    System,
}

/// The direction/shape of an access, used by the trace and race detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A read.
    Load,
    /// A write.
    Store,
    /// An atomic read-modify-write (counts as both).
    Rmw,
}

impl AccessKind {
    /// `true` if the access writes memory.
    pub fn writes(self) -> bool {
        matches!(self, AccessKind::Store | AccessKind::Rmw)
    }

    /// `true` if the access reads memory.
    pub fn reads(self) -> bool {
        matches!(self, AccessKind::Load | AccessKind::Rmw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn racyness_matches_cuda_memory_model() {
        assert!(AccessMode::Plain.is_racy());
        assert!(AccessMode::Volatile.is_racy());
        assert!(!AccessMode::Atomic.is_racy());
    }

    #[test]
    fn rmw_reads_and_writes() {
        assert!(AccessKind::Rmw.reads() && AccessKind::Rmw.writes());
        assert!(AccessKind::Load.reads() && !AccessKind::Load.writes());
        assert!(!AccessKind::Store.reads() && AccessKind::Store.writes());
    }
}
