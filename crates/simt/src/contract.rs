//! Kernel access contracts and the dynamic contract sanitizer.
//!
//! A [`KernelContract`] declares, per named device buffer, the complete
//! footprint a kernel is allowed to touch: which [`AccessMode`] with which
//! [`AccessKind`], under which *index discipline* (does each thread stay on
//! its own elements, or can it reach any element?), in which barrier phase,
//! and — for conflicts the paper calls "benign" — which [`BenignClass`] the
//! race falls into.
//!
//! Contracts serve two masters:
//!
//! - The **static checker** (`ecl-analyze`) pairs the entries of each kernel
//!   and proves cross-thread race-freedom (atomic-atomic, owner-disjoint,
//!   barrier-ordered, or declared-disjoint regions) or classifies the
//!   remaining conflicts into the paper's benign taxonomy.
//! - The **sanitizer** (this module): [`crate::Gpu::install_contracts`] arms
//!   dynamic enforcement, validating every device access of every launch
//!   against the declared footprint and raising a typed
//!   [`SimError::ContractViolation`] on the first access outside it. This is
//!   what keeps contracts honest instead of aspirational: a kernel whose
//!   code drifts from its declaration fails its launch.
//!
//! Ownership disciplines are checked exactly: [`IndexDiscipline::OwnedByGlobalId`]
//! is the grid-stride invariant (`element % num_threads == global_id`);
//! [`IndexDiscipline::OwnedRange`] is first-touch ownership — the first
//! thread to touch an element under an owned entry owns it for the rest of
//! the launch, so any dynamically-disjoint per-thread partition (ticket
//! slots, tile elements) passes and any overlap is a violation.

use std::collections::HashMap;

use crate::access::{AccessKind, AccessMode};
use crate::error::SimError;
use crate::mem::Memory;
use crate::trace::Space;

/// The buffer name contracts use for per-block shared memory (shared
/// accesses carry byte offsets, not arena addresses, so there is no named
/// allocation to resolve).
pub const SHARED_BUFFER: &str = "shared";

/// How a kernel's threads index into one buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexDiscipline {
    /// Grid-stride ownership: thread `t` only touches elements `i` with
    /// `i % num_threads == t` (the `ForEach` distribution). Statically,
    /// two such entries are disjoint across threads; dynamically the
    /// modular invariant is checked per access.
    OwnedByGlobalId {
        /// Bytes per element (the divisor that turns a byte offset into an
        /// element index).
        elem_bytes: u32,
    },
    /// Per-thread disjoint element sets determined at run time (reserved
    /// ticket slots, block-tile elements). Statically as good as
    /// [`IndexDiscipline::OwnedByGlobalId`]; dynamically enforced by
    /// first-touch ownership within a launch.
    OwnedRange {
        /// Bytes per element.
        elem_bytes: u32,
    },
    /// Any thread may touch any element — the discipline under which
    /// cross-thread conflicts are actually possible.
    Arbitrary,
}

impl IndexDiscipline {
    /// True for either owned discipline (cross-thread disjoint by
    /// construction).
    pub fn is_owned(&self) -> bool {
        !matches!(self, IndexDiscipline::Arbitrary)
    }
}

/// The paper's taxonomy of benign races (§IV-B): why a statically-possible
/// conflict cannot corrupt the final answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BenignClass {
    /// A lost or stale update is re-propagated by a later iteration of the
    /// enclosing fixed-point loop (union-find path shortening, color
    /// re-checks): the value converges regardless of which write wins.
    RePropagatedLostUpdate,
    /// All racing writes store the same value (a raised flag, an `OUT`
    /// status), so any interleaving leaves the same state.
    IdempotentWrite,
    /// The racing update is monotonic (max/min toward a fixed point); a
    /// stale read can only delay convergence, never reverse it.
    MonotonicUpdate,
}

impl std::fmt::Display for BenignClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenignClass::RePropagatedLostUpdate => write!(f, "re-propagated lost update"),
            BenignClass::IdempotentWrite => write!(f, "idempotent write"),
            BenignClass::MonotonicUpdate => write!(f, "monotonic update"),
        }
    }
}

/// One row of a kernel's declared footprint: a (buffer, mode, kind) shape
/// plus its index discipline and optional static annotations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FootprintEntry {
    /// Name of the allocation ([`crate::Gpu::alloc_named`]) or
    /// [`SHARED_BUFFER`].
    pub buffer: &'static str,
    /// Address space of the access.
    pub space: Space,
    /// Access mode (plain / volatile / atomic).
    pub mode: AccessMode,
    /// Load, store, or read-modify-write.
    pub kind: AccessKind,
    /// Which elements each thread may touch.
    pub discipline: IndexDiscipline,
    /// Declared-disjoint region tag: entries of the *same* kernel and buffer
    /// with *different* region tags assert their element sets never overlap
    /// (e.g. APSP's pivot-row reads vs. owned-tile writes). The static
    /// checker trusts the declaration; the differential harness discharges
    /// it dynamically.
    pub region: Option<&'static str>,
    /// Barrier-phase tag for shared-memory entries: entries with different
    /// tags are separated by a block barrier, so they are ordered, not racy.
    pub phase: Option<u8>,
    /// For entries that participate in baseline races: the benign class the
    /// static checker assigns to conflicts involving this entry.
    pub benign: Option<BenignClass>,
}

impl FootprintEntry {
    /// A global-memory footprint entry.
    pub fn global(
        buffer: &'static str,
        mode: AccessMode,
        kind: AccessKind,
        discipline: IndexDiscipline,
    ) -> Self {
        FootprintEntry {
            buffer,
            space: Space::Global,
            mode,
            kind,
            discipline,
            region: None,
            phase: None,
            benign: None,
        }
    }

    /// A per-block shared-memory footprint entry.
    pub fn shared(mode: AccessMode, kind: AccessKind, discipline: IndexDiscipline) -> Self {
        FootprintEntry {
            buffer: SHARED_BUFFER,
            space: Space::Shared,
            mode,
            kind,
            discipline,
            region: None,
            phase: None,
            benign: None,
        }
    }

    /// Tags the entry with a declared-disjoint region.
    pub fn region(mut self, tag: &'static str) -> Self {
        self.region = Some(tag);
        self
    }

    /// Tags the entry with a barrier-phase number (shared memory).
    pub fn phase(mut self, phase: u8) -> Self {
        self.phase = Some(phase);
        self
    }

    /// Assigns the benign class for conflicts involving this entry.
    pub fn benign(mut self, class: BenignClass) -> Self {
        self.benign = Some(class);
        self
    }

    /// One-line human description, used in violation messages and reports.
    pub fn describe(&self) -> String {
        let disc = match self.discipline {
            IndexDiscipline::OwnedByGlobalId { elem_bytes } => {
                format!("owned-by-global-id/{elem_bytes}B")
            }
            IndexDiscipline::OwnedRange { elem_bytes } => format!("owned-range/{elem_bytes}B"),
            IndexDiscipline::Arbitrary => "arbitrary".to_string(),
        };
        format!("{:?} {:?} {} [{disc}]", self.mode, self.kind, self.buffer)
    }
}

/// The declared access footprint of one kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelContract {
    /// Kernel name, as reported by [`crate::Kernel::name`].
    pub kernel: String,
    /// The complete set of allowed access shapes.
    pub entries: Vec<FootprintEntry>,
}

impl KernelContract {
    /// An empty contract for `kernel`.
    pub fn new(kernel: &str) -> Self {
        KernelContract {
            kernel: kernel.to_string(),
            entries: Vec::new(),
        }
    }

    /// Adds an entry (builder style). Duplicate shapes are kept once.
    pub fn entry(mut self, e: FootprintEntry) -> Self {
        if !self.entries.contains(&e) {
            self.entries.push(e);
        }
        self
    }

    /// Adds many entries (builder style).
    pub fn entries(mut self, es: impl IntoIterator<Item = FootprintEntry>) -> Self {
        for e in es {
            if !self.entries.contains(&e) {
                self.entries.push(e);
            }
        }
        self
    }
}

/// Ownership key for first-touch `OwnedRange` tracking: the allocation (or
/// shared window per block) plus the element index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct OwnerKey {
    space: Space,
    /// Allocation base address (global) or block index (shared).
    base: u32,
    elem: u32,
}

/// The armed sanitizer: installed contracts plus per-launch ownership state.
#[derive(Debug, Clone)]
pub(crate) struct SanitizerState {
    set: HashMap<String, KernelContract>,
    owners: HashMap<OwnerKey, u32>,
}

impl SanitizerState {
    pub(crate) fn new(contracts: impl IntoIterator<Item = KernelContract>) -> Self {
        SanitizerState {
            set: contracts
                .into_iter()
                .map(|c| (c.kernel.clone(), c))
                .collect(),
            owners: HashMap::new(),
        }
    }

    /// Resets per-launch state (first-touch ownership is scoped to one
    /// launch: launch boundaries order all accesses).
    pub(crate) fn begin_launch(&mut self) {
        self.owners.clear();
    }

    /// Validates one dynamic access against the kernel's declared footprint.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn check(
        &mut self,
        kernel: &str,
        space: Space,
        addr: u32,
        mode: AccessMode,
        kind: AccessKind,
        thread: u32,
        num_threads: u32,
        block: u32,
        mem: &Memory,
    ) -> Result<(), SimError> {
        let SanitizerState { set, owners } = self;
        let violation =
            |buffer: &str, offset: Option<u32>, declared: String| SimError::ContractViolation {
                kernel: kernel.to_string(),
                detail: Box::new(crate::error::ContractViolationDetail {
                    kernel: kernel.to_string(),
                    thread,
                    addr,
                    buffer: buffer.to_string(),
                    space,
                    mode,
                    kind,
                    offset,
                    declared,
                }),
            };
        let Some(contract) = set.get(kernel) else {
            return Err(violation(
                "?",
                None,
                "no contract declared for this kernel".into(),
            ));
        };
        // Resolve the access to a named buffer and an ownership base.
        let (buffer, base, owner_base) = match space {
            Space::Shared => (SHARED_BUFFER, 0u32, block),
            Space::Global => {
                let Some((alloc_base, _)) = mem.allocation_of(addr) else {
                    return Err(violation(
                        "?",
                        None,
                        "address outside any allocation".into(),
                    ));
                };
                let Some(name) = mem.allocation_name(addr) else {
                    return Err(violation(
                        "<unnamed>",
                        Some(addr - alloc_base),
                        "allocation has no name; contracts require named buffers".into(),
                    ));
                };
                // The name borrows from `mem`, which outlives this call.
                (name, alloc_base, alloc_base)
            }
        };
        let candidates: Vec<&FootprintEntry> = contract
            .entries
            .iter()
            .filter(|e| e.space == space && e.buffer == buffer && e.mode == mode && e.kind == kind)
            .collect();
        if candidates.is_empty() {
            let declared: Vec<String> = contract
                .entries
                .iter()
                .filter(|e| e.buffer == buffer)
                .map(FootprintEntry::describe)
                .collect();
            let declared = if declared.is_empty() {
                format!("buffer '{buffer}' is not in the kernel's footprint")
            } else {
                declared.join(", ")
            };
            return Err(violation(buffer, Some(addr - base), declared));
        }
        // Stateless disciplines first; first-touch claims happen only when
        // nothing else admits the access.
        for e in &candidates {
            match e.discipline {
                IndexDiscipline::Arbitrary => return Ok(()),
                IndexDiscipline::OwnedByGlobalId { elem_bytes } => {
                    let elem = (addr - base) / elem_bytes.max(1);
                    if elem % num_threads.max(1) == thread {
                        return Ok(());
                    }
                }
                IndexDiscipline::OwnedRange { .. } => {}
            }
        }
        for e in &candidates {
            if let IndexDiscipline::OwnedRange { elem_bytes } = e.discipline {
                let elem = (addr - base) / elem_bytes.max(1);
                let key = OwnerKey {
                    space,
                    base: owner_base,
                    elem,
                };
                let owner = *owners.entry(key).or_insert(thread);
                if owner == thread {
                    return Ok(());
                }
            }
        }
        let declared = candidates
            .iter()
            .map(|e| e.describe())
            .collect::<Vec<_>>()
            .join(", ");
        Err(violation(
            buffer,
            Some(addr - base),
            format!("{declared}; element not owned by thread {thread}"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{AccessKind, AccessMode};
    use crate::config::GpuConfig;
    use crate::exec::{ForEach, LaunchConfig};
    use crate::host::Gpu;

    fn owned_store_contract(name: &str) -> KernelContract {
        KernelContract::new(name).entry(FootprintEntry::global(
            "data",
            AccessMode::Plain,
            AccessKind::Store,
            IndexDiscipline::OwnedByGlobalId { elem_bytes: 4 },
        ))
    }

    #[test]
    fn in_contract_launch_passes() {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let buf = gpu.alloc_named::<u32>(512, "data");
        gpu.install_contracts([owned_store_contract("fill")]);
        gpu.launch(
            LaunchConfig::for_items(512),
            ForEach::new("fill", 512, move |ctx, i| {
                ctx.store(buf.at(i as usize), i);
            }),
        );
        assert_eq!(gpu.download(&buf)[17], 17);
    }

    #[test]
    fn out_of_contract_access_is_a_typed_violation() {
        // The contract says "each thread writes only its own elements"; the
        // kernel deliberately writes a neighbor's slot.
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let buf = gpu.alloc_named::<u32>(512, "data");
        gpu.install_contracts([owned_store_contract("rogue")]);
        let err = gpu
            .try_launch(
                LaunchConfig::for_items(512),
                ForEach::new("rogue", 512, move |ctx, i| {
                    let neighbor = (i as usize + 1) % 512;
                    ctx.store(buf.at(neighbor), i);
                }),
            )
            .unwrap_err();
        match err {
            SimError::ContractViolation { kernel, detail } => {
                assert_eq!(kernel, "rogue");
                assert_eq!(detail.buffer, "data");
            }
            other => panic!("expected ContractViolation, got {other:?}"),
        }
    }

    #[test]
    fn undeclared_mode_is_a_violation() {
        // Contract admits plain stores only; a volatile store must fail.
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let buf = gpu.alloc_named::<u32>(64, "data");
        gpu.install_contracts([owned_store_contract("vol")]);
        let err = gpu
            .try_launch(
                LaunchConfig::for_items(64),
                ForEach::new("vol", 64, move |ctx, i| {
                    ctx.store_volatile(buf.at(i as usize), i);
                }),
            )
            .unwrap_err();
        assert!(matches!(err, SimError::ContractViolation { .. }));
        assert!(err.to_string().contains("contract violation"));
    }

    #[test]
    fn unnamed_allocation_is_a_violation() {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let buf = gpu.alloc::<u32>(64);
        gpu.install_contracts([owned_store_contract("anon")]);
        let err = gpu
            .try_launch(
                LaunchConfig::for_items(64),
                ForEach::new("anon", 64, move |ctx, i| {
                    ctx.store(buf.at(i as usize), i);
                }),
            )
            .unwrap_err();
        assert!(err.to_string().contains("no name"));
    }

    #[test]
    fn missing_contract_is_a_violation() {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let buf = gpu.alloc_named::<u32>(64, "data");
        gpu.install_contracts([owned_store_contract("declared")]);
        let err = gpu
            .try_launch(
                LaunchConfig::for_items(64),
                ForEach::new("undeclared", 64, move |ctx, i| {
                    ctx.store(buf.at(i as usize), i);
                }),
            )
            .unwrap_err();
        assert!(err.to_string().contains("no contract"));
    }

    #[test]
    fn owned_range_first_touch_allows_disjoint_claims() {
        // Each thread claims a slot from an atomic ticket counter — disjoint
        // at run time even though the slot is data-dependent.
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let slots = gpu.alloc_named::<u32>(256, "slots");
        let ticket = gpu.alloc_named::<u32>(1, "ticket");
        let contract = KernelContract::new("claim")
            .entry(FootprintEntry::global(
                "ticket",
                AccessMode::Atomic,
                AccessKind::Rmw,
                IndexDiscipline::Arbitrary,
            ))
            .entry(FootprintEntry::global(
                "slots",
                AccessMode::Plain,
                AccessKind::Store,
                IndexDiscipline::OwnedRange { elem_bytes: 4 },
            ));
        gpu.install_contracts([contract]);
        gpu.launch(
            LaunchConfig::for_items(256),
            ForEach::new("claim", 256, move |ctx, i| {
                let slot = ctx.atomic_add_u32(ticket.at(0), 1);
                ctx.store(slots.at(slot as usize), i);
            }),
        );
        assert_eq!(gpu.download(&ticket)[0], 256);
    }

    #[test]
    fn owned_range_overlap_is_a_violation() {
        // Every thread writes slot 0: the second thread to touch it loses.
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let slots = gpu.alloc_named::<u32>(4, "slots");
        let contract = KernelContract::new("clash").entry(FootprintEntry::global(
            "slots",
            AccessMode::Plain,
            AccessKind::Store,
            IndexDiscipline::OwnedRange { elem_bytes: 4 },
        ));
        gpu.install_contracts([contract]);
        let err = gpu
            .try_launch(
                LaunchConfig::for_items(64),
                ForEach::new("clash", 64, move |ctx, _| {
                    ctx.store(slots.at(0), 1);
                }),
            )
            .unwrap_err();
        assert!(matches!(err, SimError::ContractViolation { .. }));
    }

    #[test]
    fn clearing_contracts_disarms_the_sanitizer() {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let buf = gpu.alloc::<u32>(64);
        gpu.install_contracts([owned_store_contract("free")]);
        gpu.clear_contracts();
        // Unnamed buffer + no contract: would violate if still armed.
        gpu.launch(
            LaunchConfig::for_items(64),
            ForEach::new("free", 64, move |ctx, i| {
                ctx.store(buf.at(i as usize), i);
            }),
        );
        assert_eq!(gpu.download(&buf)[5], 5);
    }
}
