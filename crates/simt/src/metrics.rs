//! Per-kernel performance counters (the simulator's profiler).

use crate::mem::CacheStats;

/// Counters collected for one kernel launch — the simulator's equivalent of
/// an Nsight Compute profile, used to back the paper's §VI cache-hit-rate
/// observations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelStats {
    /// Kernel name.
    pub name: String,
    /// Simulated elapsed cycles for this launch (including launch overhead).
    pub cycles: u64,
    /// L1 hit/miss counters (summed over SMs).
    pub l1: CacheStats,
    /// L2 hit/miss counters.
    pub l2: CacheStats,
    /// DRAM transactions.
    pub dram_accesses: u64,
    /// Plain loads + stores issued.
    pub plain_accesses: u64,
    /// Volatile loads + stores issued.
    pub volatile_accesses: u64,
    /// Atomic loads, stores, and RMWs issued.
    pub atomic_accesses: u64,
    /// Plain stores that were coalesced away by the compiler model (deferred
    /// store overwritten before draining).
    pub coalesced_stores: u64,
    /// Scheduler steps executed (coroutine resumptions).
    pub steps: u64,
    /// Threads launched.
    pub threads: u64,
}

impl KernelStats {
    /// Total device memory accesses of any mode.
    pub fn total_accesses(&self) -> u64 {
        self.plain_accesses + self.volatile_accesses + self.atomic_accesses
    }
}

/// Aggregates launch stats across a whole run (e.g. one algorithm).
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// One entry per kernel launch, in launch order.
    pub launches: Vec<KernelStats>,
}

impl RunStats {
    /// Total simulated cycles across all launches.
    pub fn total_cycles(&self) -> u64 {
        self.launches.iter().map(|l| l.cycles).sum()
    }

    /// Aggregate L1 hit rate across launches.
    pub fn l1_hit_rate(&self) -> f64 {
        let (h, m) = self
            .launches
            .iter()
            .fold((0u64, 0u64), |(h, m), l| (h + l.l1.hits, m + l.l1.misses));
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Aggregate atomic-access count.
    pub fn atomic_accesses(&self) -> u64 {
        self.launches.iter().map(|l| l.atomic_accesses).sum()
    }

    /// Number of kernel launches.
    pub fn num_launches(&self) -> usize {
        self.launches.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation() {
        let mut run = RunStats::default();
        run.launches.push(KernelStats {
            name: "a".into(),
            cycles: 100,
            l1: CacheStats { hits: 3, misses: 1 },
            atomic_accesses: 5,
            ..Default::default()
        });
        run.launches.push(KernelStats {
            name: "b".into(),
            cycles: 50,
            l1: CacheStats { hits: 1, misses: 3 },
            ..Default::default()
        });
        assert_eq!(run.total_cycles(), 150);
        assert_eq!(run.atomic_accesses(), 5);
        assert!((run.l1_hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(run.num_launches(), 2);
    }

    #[test]
    fn empty_run_hit_rate_is_zero() {
        assert_eq!(RunStats::default().l1_hit_rate(), 0.0);
    }
}
