//! Simulated device memory: the byte-addressable arena, typed pointers and
//! buffers, the cache hierarchy, and the per-level cost model.

mod arena;
mod cache;
mod hierarchy;

pub use arena::{DeviceBuffer, DevicePtr, DeviceValue, Memory};
pub use cache::{Cache, CacheStats};
pub use hierarchy::{MemLevel, MemSystem};
