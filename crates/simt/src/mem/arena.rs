//! The byte-addressable device memory arena and typed pointers into it.

use std::marker::PhantomData;

/// A scalar type that can live in simulated device memory.
///
/// This trait is sealed in spirit: the simulator supports exactly the scalar
/// widths GPU hardware loads and stores natively (8, 32, and 64 bits), which
/// is what makes the paper's sub-word typecasting tricks (Figs. 3–5)
/// necessary in the first place.
pub trait DeviceValue: Copy + PartialEq + std::fmt::Debug + 'static {
    /// Size of the value in bytes.
    const WIDTH: u32;

    /// Reads a value from the byte slice at `addr`.
    fn read_from(bytes: &[u8], addr: u32) -> Self;
    /// Writes the value into the byte slice at `addr`.
    fn write_to(self, bytes: &mut [u8], addr: u32);
    /// Zero-extends the value's bit pattern to 64 bits (store-buffer entry).
    fn to_bits(self) -> u64;
    /// Recovers a value from a 64-bit bit pattern.
    fn from_bits(bits: u64) -> Self;
}

macro_rules! impl_device_value {
    ($ty:ty, $width:expr) => {
        impl DeviceValue for $ty {
            const WIDTH: u32 = $width;

            #[inline]
            fn read_from(bytes: &[u8], addr: u32) -> Self {
                let a = addr as usize;
                <$ty>::from_le_bytes(bytes[a..a + $width].try_into().unwrap())
            }

            #[inline]
            fn write_to(self, bytes: &mut [u8], addr: u32) {
                let a = addr as usize;
                bytes[a..a + $width].copy_from_slice(&self.to_le_bytes());
            }

            #[inline]
            fn to_bits(self) -> u64 {
                // Cast through the unsigned type of equal width to avoid
                // sign-extension surprises.
                self.to_le_bytes()
                    .iter()
                    .rev()
                    .fold(0u64, |acc, &b| (acc << 8) | b as u64)
            }

            #[inline]
            fn from_bits(bits: u64) -> Self {
                let mut le = [0u8; $width];
                for (i, slot) in le.iter_mut().enumerate() {
                    *slot = (bits >> (8 * i)) as u8;
                }
                <$ty>::from_le_bytes(le)
            }
        }
    };
}

impl_device_value!(u8, 1);
impl_device_value!(i8, 1);
impl_device_value!(u32, 4);
impl_device_value!(i32, 4);
impl_device_value!(u64, 8);
impl_device_value!(i64, 8);

/// A typed address in device memory. `Copy`, so kernels can capture it.
pub struct DevicePtr<T> {
    addr: u32,
    _marker: PhantomData<*const T>,
}

// Manual impls: derive would bound them on `T`.
impl<T> Clone for DevicePtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for DevicePtr<T> {}
impl<T> PartialEq for DevicePtr<T> {
    fn eq(&self, other: &Self) -> bool {
        self.addr == other.addr
    }
}
impl<T> Eq for DevicePtr<T> {}
impl<T> std::fmt::Debug for DevicePtr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DevicePtr({:#x})", self.addr)
    }
}

// A DevicePtr is an index, not a real pointer; it is safe to move across
// threads (the harness may run simulations on worker threads).
unsafe impl<T> Send for DevicePtr<T> {}
unsafe impl<T> Sync for DevicePtr<T> {}

impl<T: DeviceValue> DevicePtr<T> {
    /// Creates a pointer from a raw byte address.
    ///
    /// Used by the typecasting helpers in `ecl-core::primitives` that
    /// reinterpret a `u8` array as `u32`s (the paper's Fig. 3 trick).
    pub fn from_raw(addr: u32) -> Self {
        DevicePtr {
            addr,
            _marker: PhantomData,
        }
    }

    /// The raw byte address.
    pub fn addr(self) -> u32 {
        self.addr
    }

    /// Pointer `count` elements further.
    pub fn offset(self, count: usize) -> Self {
        DevicePtr::from_raw(self.addr + (count as u32) * T::WIDTH)
    }

    /// Reinterprets this pointer as a pointer to another scalar type — the
    /// simulator analogue of the paper's `(int*)node_stat` casts.
    pub fn cast<U: DeviceValue>(self) -> DevicePtr<U> {
        DevicePtr::from_raw(self.addr)
    }
}

/// A typed, sized allocation in device memory.
pub struct DeviceBuffer<T> {
    ptr: DevicePtr<T>,
    len: usize,
}

impl<T> Clone for DeviceBuffer<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for DeviceBuffer<T> {}
impl<T> std::fmt::Debug for DeviceBuffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceBuffer")
            .field("addr", &self.ptr)
            .field("len", &self.len)
            .finish()
    }
}

impl<T: DeviceValue> DeviceBuffer<T> {
    pub(crate) fn new(addr: u32, len: usize) -> Self {
        DeviceBuffer {
            ptr: DevicePtr::from_raw(addr),
            len,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pointer to element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len` — the simulator's equivalent of a segfault,
    /// caught deterministically.
    #[inline]
    pub fn at(&self, i: usize) -> DevicePtr<T> {
        assert!(
            i < self.len,
            "device buffer index {i} out of range {}",
            self.len
        );
        self.ptr.offset(i)
    }

    /// Pointer to the first element.
    pub fn as_ptr(&self) -> DevicePtr<T> {
        self.ptr
    }
}

/// The flat byte-addressable device memory.
///
/// All functional state lives here; caches are timing-only. Allocation is a
/// bump allocator with 256-byte alignment (matching `cudaMalloc`).
#[derive(Debug)]
pub struct Memory {
    bytes: Vec<u8>,
    next: u32,
    allocations: Vec<Allocation>,
    /// Per-`(kernel, buffer)` access-mode dispatch for IR-driven execution
    /// (see [`crate::ir::ModeTable`]). Lives here so kernel closures can
    /// reach it through the `Ctx` they already hold.
    mode_table: Option<crate::ir::ModeTable>,
}

#[derive(Debug)]
struct Allocation {
    base: u32,
    size: u32,
    name: Option<String>,
}

impl Memory {
    /// Creates an empty device memory.
    pub fn new() -> Self {
        Memory {
            bytes: Vec::new(),
            next: 0,
            allocations: Vec::new(),
            mode_table: None,
        }
    }

    /// Installs (or clears) the IR-derived access-mode dispatch table.
    pub fn set_mode_table(&mut self, table: Option<crate::ir::ModeTable>) {
        self.mode_table = table;
    }

    /// The installed mode table, if any.
    pub fn mode_table(&self) -> Option<&crate::ir::ModeTable> {
        self.mode_table.as_ref()
    }

    /// Allocates `len` elements of `T`, zero-initialized.
    pub fn alloc<T: DeviceValue>(&mut self, len: usize) -> DeviceBuffer<T> {
        let size = (len as u32) * T::WIDTH;
        let addr = self.next;
        let padded = (size + 255) & !255;
        self.next += padded.max(256);
        self.bytes.resize(self.next as usize, 0);
        self.allocations.push(Allocation {
            base: addr,
            size,
            name: None,
        });
        DeviceBuffer::new(addr, len)
    }

    /// Attaches a human-readable name to the allocation that starts at
    /// `base` (used by race reports to identify the racing array, e.g.
    /// `node_stat` for the MIS status bytes).
    pub fn set_allocation_name(&mut self, base: u32, name: &str) {
        if let Some(a) = self.allocations.iter_mut().find(|a| a.base == base) {
            a.name = Some(name.to_string());
        }
    }

    /// The name of the allocation containing `addr`, if one was set.
    pub fn allocation_name(&self, addr: u32) -> Option<&str> {
        self.allocations
            .iter()
            .find(|a| addr >= a.base && addr < a.base + a.size)
            .and_then(|a| a.name.as_deref())
    }

    /// Total bytes currently reserved.
    pub fn footprint(&self) -> usize {
        self.bytes.len()
    }

    /// Finds the allocation containing `addr`, as `(base, size)`, for
    /// race-report symbolization.
    pub fn allocation_of(&self, addr: u32) -> Option<(u32, u32)> {
        self.allocations
            .iter()
            .find(|a| addr >= a.base && addr < a.base + a.size)
            .map(|a| (a.base, a.size))
    }

    /// Reads a value, bypassing all modeling (host access / debugger view).
    #[inline]
    pub fn read<T: DeviceValue>(&self, ptr: DevicePtr<T>) -> T {
        T::read_from(&self.bytes, ptr.addr())
    }

    /// Writes a value, bypassing all modeling (host access).
    #[inline]
    pub fn write<T: DeviceValue>(&mut self, ptr: DevicePtr<T>, value: T) {
        value.write_to(&mut self.bytes, ptr.addr());
    }

    /// Raw read of `width` bytes at `addr` as a zero-extended u64.
    #[inline]
    pub fn read_bits(&self, addr: u32, width: u32) -> u64 {
        match width {
            1 => u8::read_from(&self.bytes, addr) as u64,
            4 => u32::read_from(&self.bytes, addr) as u64,
            8 => u64::read_from(&self.bytes, addr),
            _ => panic!("unsupported access width {width}"),
        }
    }

    /// Raw write of `width` bytes at `addr` from a u64 bit pattern.
    #[inline]
    pub fn write_bits(&mut self, addr: u32, width: u32, bits: u64) {
        match width {
            1 => (bits as u8).write_to(&mut self.bytes, addr),
            4 => (bits as u32).write_to(&mut self.bytes, addr),
            8 => bits.write_to(&mut self.bytes, addr),
            _ => panic!("unsupported access width {width}"),
        }
    }
}

impl Default for Memory {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_zeroed_and_aligned() {
        let mut mem = Memory::new();
        let a = mem.alloc::<u32>(10);
        let b = mem.alloc::<u8>(3);
        assert_eq!(a.as_ptr().addr() % 256, 0);
        assert_eq!(b.as_ptr().addr() % 256, 0);
        assert_ne!(a.as_ptr().addr(), b.as_ptr().addr());
        assert_eq!(mem.read(a.at(5)), 0u32);
    }

    #[test]
    fn typed_read_write_roundtrip() {
        let mut mem = Memory::new();
        let buf = mem.alloc::<u64>(4);
        mem.write(buf.at(2), 0xdead_beef_cafe_f00du64);
        assert_eq!(mem.read(buf.at(2)), 0xdead_beef_cafe_f00du64);
        let bytes = mem.alloc::<u8>(4);
        mem.write(bytes.at(0), 0xabu8);
        assert_eq!(mem.read(bytes.at(0)), 0xab);
    }

    #[test]
    fn cast_views_same_bytes() {
        let mut mem = Memory::new();
        let bytes = mem.alloc::<u8>(8);
        for i in 0..4 {
            mem.write(bytes.at(i), (i as u8) + 1);
        }
        let as_u32: DevicePtr<u32> = bytes.as_ptr().cast();
        assert_eq!(mem.read(as_u32), 0x0403_0201);
    }

    #[test]
    fn signed_bits_roundtrip_without_sign_extension() {
        assert_eq!((-1i32).to_bits(), 0xffff_ffffu64);
        assert_eq!(i32::from_bits(0xffff_ffff), -1);
        assert_eq!((-2i64).to_bits(), u64::MAX - 1);
        assert_eq!((-5i8).to_bits(), 0xfb);
        assert_eq!(i8::from_bits(0xfb), -5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_bounds_index_panics() {
        let mut mem = Memory::new();
        let buf = mem.alloc::<u32>(4);
        let _ = buf.at(4);
    }

    #[test]
    fn allocation_of_finds_owner() {
        let mut mem = Memory::new();
        let a = mem.alloc::<u32>(16);
        let (base, size) = mem.allocation_of(a.at(3).addr()).unwrap();
        assert_eq!(base, a.as_ptr().addr());
        assert_eq!(size, 64);
        assert!(mem.allocation_of(base + size).is_none());
    }

    #[test]
    fn read_write_bits_widths() {
        let mut mem = Memory::new();
        let buf = mem.alloc::<u64>(2);
        let addr = buf.as_ptr().addr();
        mem.write_bits(addr, 8, 0x1122_3344_5566_7788);
        assert_eq!(mem.read_bits(addr, 4), 0x5566_7788);
        assert_eq!(mem.read_bits(addr + 4, 4), 0x1122_3344);
        assert_eq!(mem.read_bits(addr, 1), 0x88);
        mem.write_bits(addr + 1, 1, 0xaa);
        assert_eq!(mem.read_bits(addr, 4), 0x5566_aa88);
    }
}
