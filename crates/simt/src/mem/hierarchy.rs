//! The memory system: per-SM L1 caches over a shared L2, with the
//! mode-dependent routing that creates the paper's performance effects.

use super::cache::{Cache, CacheStats};
use crate::access::{AccessKind, AccessMode};
use crate::config::GpuConfig;

/// Which level of the hierarchy served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemLevel {
    /// Served by the issuing SM's L1.
    L1,
    /// Served by the shared L2.
    L2,
    /// Served by DRAM.
    Dram,
}

/// The timing side of the memory hierarchy.
///
/// Routing rules (paper §II/§VI):
///
/// - **Plain** accesses look up L1, then L2, then DRAM. Plain stores are
///   write-through no-allocate (GPU L1s are not write-back coherent).
/// - **Volatile** accesses bypass L1 entirely (`ld.global.cg` semantics) and
///   are served by L2/DRAM.
/// - **Atomic** accesses execute at the L2 coherence point and pay an extra
///   read-modify-write charge on top of the L2/DRAM service cost.
#[derive(Debug)]
pub struct MemSystem {
    l1: Vec<Cache>,
    l2: Cache,
    l1_cycles: u32,
    l2_cycles: u32,
    dram_cycles: u32,
    atomic_extra: u32,
    dram_accesses: u64,
}

impl MemSystem {
    /// Builds the hierarchy for a GPU configuration.
    pub fn new(cfg: &GpuConfig) -> Self {
        MemSystem {
            l1: (0..cfg.num_sms)
                .map(|_| Cache::new(cfg.l1_kib, cfg.l1_ways, cfg.line_bytes))
                .collect(),
            l2: Cache::new(cfg.l2_kib, cfg.l2_ways, cfg.line_bytes),
            l1_cycles: cfg.l1_cycles,
            l2_cycles: cfg.l2_cycles,
            dram_cycles: cfg.dram_cycles,
            atomic_extra: cfg.atomic_extra_cycles,
            dram_accesses: 0,
        }
    }

    /// Performs the timing side of one access issued on `sm`; returns the
    /// cycle cost and the level that served it.
    ///
    /// # Panics
    ///
    /// Panics if `sm` is out of range for the configured SM count.
    #[inline]
    pub fn access(
        &mut self,
        sm: usize,
        addr: u32,
        mode: AccessMode,
        kind: AccessKind,
    ) -> (u32, MemLevel) {
        match mode {
            AccessMode::Plain => match kind {
                AccessKind::Load => {
                    if self.l1[sm].access(addr) {
                        (self.l1_cycles, MemLevel::L1)
                    } else if self.l2.access(addr) {
                        (self.l1_cycles + self.l2_cycles, MemLevel::L2)
                    } else {
                        self.dram_accesses += 1;
                        (
                            self.l1_cycles + self.l2_cycles + self.dram_cycles,
                            MemLevel::Dram,
                        )
                    }
                }
                // Write-through no-allocate: stores cost an L2 transaction;
                // the L1 line is refreshed only if already present. `touch`
                // updates the line's recency without allocating or counting
                // (a `probe` here used to discard the result, so stored-to
                // lines aged out as if never used — see the
                // `store_refreshes_resident_line` test).
                AccessKind::Store | AccessKind::Rmw => {
                    self.l1[sm].touch(addr);
                    if self.l2.access(addr) {
                        (self.l2_cycles, MemLevel::L2)
                    } else {
                        self.dram_accesses += 1;
                        (self.l2_cycles + self.dram_cycles, MemLevel::Dram)
                    }
                }
            },
            AccessMode::Volatile => {
                if self.l2.access(addr) {
                    (self.l2_cycles, MemLevel::L2)
                } else {
                    self.dram_accesses += 1;
                    (self.l2_cycles + self.dram_cycles, MemLevel::Dram)
                }
            }
            AccessMode::Atomic => {
                // Relaxed atomic loads/stores cost what volatile accesses
                // cost (both are plain L2 transactions); only read-modify-
                // write operations pay the serialization surcharge.
                let extra = if kind == AccessKind::Rmw {
                    self.atomic_extra
                } else {
                    0
                };
                if self.l2.access(addr) {
                    (self.l2_cycles + extra, MemLevel::L2)
                } else {
                    self.dram_accesses += 1;
                    (self.l2_cycles + self.dram_cycles + extra, MemLevel::Dram)
                }
            }
        }
    }

    /// Aggregate L1 statistics across all SMs.
    pub fn l1_stats(&self) -> CacheStats {
        self.l1
            .iter()
            .fold(CacheStats::default(), |acc, c| CacheStats {
                hits: acc.hits + c.stats().hits,
                misses: acc.misses + c.stats().misses,
            })
    }

    /// L2 statistics.
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// Number of DRAM transactions.
    pub fn dram_accesses(&self) -> u64 {
        self.dram_accesses
    }

    /// Resets all counters (cache contents persist across kernels, like on
    /// real hardware).
    pub fn reset_stats(&mut self) {
        for c in &mut self.l1 {
            c.reset_stats();
        }
        self.l2.reset_stats();
        self.dram_accesses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MemSystem {
        MemSystem::new(&GpuConfig::test_tiny())
    }

    #[test]
    fn plain_load_warms_l1() {
        let mut m = sys();
        let (c1, l1) = m.access(0, 64, AccessMode::Plain, AccessKind::Load);
        assert_eq!(l1, MemLevel::Dram);
        let (c2, l2) = m.access(0, 64, AccessMode::Plain, AccessKind::Load);
        assert_eq!(l2, MemLevel::L1);
        assert!(c2 < c1);
    }

    #[test]
    fn volatile_bypasses_l1() {
        let mut m = sys();
        // Warm everything.
        m.access(0, 64, AccessMode::Plain, AccessKind::Load);
        let (_, level) = m.access(0, 64, AccessMode::Volatile, AccessKind::Load);
        assert_eq!(level, MemLevel::L2);
    }

    #[test]
    fn atomic_rmw_is_costlier_than_volatile() {
        let mut m = sys();
        m.access(0, 64, AccessMode::Plain, AccessKind::Load); // warm L2
        let (cv, _) = m.access(0, 64, AccessMode::Volatile, AccessKind::Load);
        let (ca, _) = m.access(0, 64, AccessMode::Atomic, AccessKind::Rmw);
        assert!(ca > cv);
        // ...but atomic loads cost the same as volatile loads: both are
        // plain L2 transactions without the RMW serialization surcharge.
        let (cl, _) = m.access(0, 64, AccessMode::Atomic, AccessKind::Load);
        assert_eq!(cl, cv);
    }

    #[test]
    fn l1s_are_private_per_sm() {
        let mut m = sys();
        m.access(0, 64, AccessMode::Plain, AccessKind::Load);
        let (_, level) = m.access(1, 64, AccessMode::Plain, AccessKind::Load);
        // SM 1's L1 is cold; the access is served by the shared L2.
        assert_eq!(level, MemLevel::L2);
    }

    #[test]
    fn store_refreshes_resident_line() {
        // test_tiny's L1 is 2 KiB, 2-way, 32 B lines -> 32 sets; lines 0,
        // 32, and 64 (addrs 0, 1024, 2048) all map to set 0.
        let mut m = sys();
        m.access(0, 0, AccessMode::Plain, AccessKind::Load); // line 0 resident
        m.access(0, 1024, AccessMode::Plain, AccessKind::Load); // line 32 MRU
                                                                // A store to line 0 must refresh its recency (write-through
                                                                // no-allocate keeps the line hot)...
        m.access(0, 0, AccessMode::Plain, AccessKind::Store);
        // ...so a conflicting fill evicts line 32, not the stored-to line.
        m.access(0, 2048, AccessMode::Plain, AccessKind::Load);
        let (_, level) = m.access(0, 0, AccessMode::Plain, AccessKind::Load);
        assert_eq!(level, MemLevel::L1, "stored-to line must survive eviction");
        let (_, level) = m.access(0, 1024, AccessMode::Plain, AccessKind::Load);
        assert_ne!(level, MemLevel::L1, "the un-refreshed line is the victim");
    }

    #[test]
    fn store_does_not_allocate_in_l1() {
        let mut m = sys();
        m.access(0, 64, AccessMode::Plain, AccessKind::Store);
        // The line was never loaded, so the store must not have allocated.
        let (_, level) = m.access(0, 64, AccessMode::Plain, AccessKind::Load);
        assert_ne!(level, MemLevel::L1);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut m = sys();
        m.access(0, 0, AccessMode::Plain, AccessKind::Load);
        m.access(0, 0, AccessMode::Plain, AccessKind::Load);
        assert_eq!(m.l1_stats().hits, 1);
        assert_eq!(m.dram_accesses(), 1);
        m.reset_stats();
        assert_eq!(m.l1_stats().hits + m.l1_stats().misses, 0);
        // Contents persist: the next access still hits L1.
        let (_, level) = m.access(0, 0, AccessMode::Plain, AccessKind::Load);
        assert_eq!(level, MemLevel::L1);
    }
}
