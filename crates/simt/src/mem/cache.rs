//! A set-associative cache model with LRU replacement.
//!
//! Caches in this simulator are *timing-only*: they never hold data, they
//! only decide which level of the hierarchy serves an access. Functional
//! values always come from the arena (plus the compiler-model store buffers),
//! which keeps timing and semantics cleanly separated.

/// Hit/miss counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses served by this cache.
    pub hits: u64,
    /// Accesses that had to go to the next level.
    pub misses: u64,
}

impl CacheStats {
    /// Hit rate in `0.0..=1.0`; zero when the cache was never accessed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A set-associative, LRU, timing-only cache.
#[derive(Debug, Clone)]
pub struct Cache {
    /// `tags[set * ways + way]`; `u64::MAX` marks an empty way.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    num_sets: u32,
    ways: u32,
    line_shift: u32,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache of `size_kib` KiB with `ways`-way associativity and
    /// `line_bytes`-byte lines.
    ///
    /// The geometry must describe the configured capacity *exactly*: the
    /// cache holds `size_kib * 1024 / line_bytes` lines, which must be a
    /// positive multiple of `ways`. Anything else used to be silently
    /// repaired (`num_sets.max(1)` could double a 1-set cache's capacity,
    /// and `lines / ways` truncation could shrink it), which made the
    /// modeled hit rates lie about the configured hardware.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two, the cache is smaller
    /// than one line, `ways` exceeds the line count, or the line count is
    /// not a multiple of `ways`.
    pub fn new(size_kib: u32, ways: u32, line_bytes: u32) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(ways >= 1, "need at least one way");
        let lines = size_kib * 1024 / line_bytes;
        assert!(
            lines >= 1,
            "cache geometry: {size_kib} KiB cannot hold even one {line_bytes}-byte line"
        );
        assert!(
            ways <= lines,
            "cache geometry: {ways}-way associativity needs at least {ways} lines, \
             but {size_kib} KiB of {line_bytes}-byte lines holds only {lines}"
        );
        assert!(
            lines.is_multiple_of(ways),
            "cache geometry: {lines} lines ({size_kib} KiB / {line_bytes} B) do not \
             divide evenly into {ways} ways"
        );
        let num_sets = lines / ways;
        let slots = (num_sets * ways) as usize;
        Cache {
            tags: vec![u64::MAX; slots],
            stamps: vec![0; slots],
            num_sets,
            ways,
            line_shift: line_bytes.trailing_zeros(),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Looks up the line containing `addr`, allocating it on a miss.
    /// Returns `true` on a hit.
    #[inline]
    pub fn access(&mut self, addr: u32) -> bool {
        let line = (addr as u64) >> self.line_shift;
        let set = (line % self.num_sets as u64) as usize;
        let base = set * self.ways as usize;
        self.clock += 1;
        let ways = self.ways as usize;
        let mut victim = base;
        let mut victim_stamp = u64::MAX;
        for slot in base..base + ways {
            if self.tags[slot] == line {
                self.stamps[slot] = self.clock;
                self.stats.hits += 1;
                return true;
            }
            if self.stamps[slot] < victim_stamp {
                victim_stamp = self.stamps[slot];
                victim = slot;
            }
        }
        self.tags[victim] = line;
        self.stamps[victim] = self.clock;
        self.stats.misses += 1;
        false
    }

    /// Checks for the line without allocating or counting (probe).
    pub fn probe(&self, addr: u32) -> bool {
        let line = (addr as u64) >> self.line_shift;
        let set = (line % self.num_sets as u64) as usize;
        let base = set * self.ways as usize;
        self.tags[base..base + self.ways as usize].contains(&line)
    }

    /// Total number of lines the cache can hold (`sets × ways`), exactly
    /// the configured `size_kib * 1024 / line_bytes`.
    pub fn num_lines(&self) -> u32 {
        self.num_sets * self.ways
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets counters (not contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(2, 2, 32);
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(31)); // same 32-byte line
        assert!(!c.access(32)); // next line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 2 KiB, 2-way, 32 B lines -> 32 sets. Three lines mapping to set 0:
        // line numbers 0, 32, 64 -> addrs 0, 32*32, 64*32.
        let mut c = Cache::new(2, 2, 32);
        assert!(!c.access(0));
        assert!(!c.access(32 * 32));
        assert!(c.access(0)); // refresh line 0
        assert!(!c.access(64 * 32)); // evicts line 32 (LRU)
        assert!(c.access(0));
        assert!(!c.access(32 * 32)); // was evicted
    }

    #[test]
    fn probe_does_not_allocate() {
        let mut c = Cache::new(2, 2, 32);
        assert!(!c.probe(0));
        assert!(!c.access(0));
        assert!(c.probe(0));
        assert_eq!(c.stats().hits + c.stats().misses, 1);
    }

    #[test]
    fn capacity_matches_configured_size_exactly() {
        // Regression: `num_sets.max(1) * ways` used to inflate capacity when
        // `ways` exceeded the line count (1 KiB / 128 B = 8 lines but 16
        // slots for a 16-way request), and truncation shrank it when
        // `lines % ways != 0`. Valid geometries must come out exact.
        assert_eq!(Cache::new(1, 8, 128).num_lines(), 8);
        assert_eq!(Cache::new(2, 2, 32).num_lines(), 64);
        assert_eq!(Cache::new(96, 4, 32).num_lines(), 3072); // the paper GPUs' L1
    }

    #[test]
    #[should_panic(expected = "needs at least 16 lines")]
    fn overwide_associativity_rejected_not_inflated() {
        // 1 KiB of 128 B lines holds 8 lines; a 16-way config used to get
        // 16 slots (double the configured size) silently.
        let _ = Cache::new(1, 16, 128);
    }

    #[test]
    #[should_panic(expected = "do not divide evenly")]
    fn non_dividing_ways_rejected_not_truncated() {
        // 8 lines into 3 ways used to truncate to 2 sets * 3 ways = 6 lines.
        let _ = Cache::new(1, 3, 128);
    }

    #[test]
    #[should_panic(expected = "cannot hold even one")]
    fn sub_line_cache_rejected() {
        let _ = Cache::new(0, 1, 128);
    }

    #[test]
    fn paper_gpu_geometries_are_valid() {
        // Every preset GPU's L1/L2 must construct under the strict checks.
        for cfg in crate::GpuConfig::paper_gpus() {
            let l1 = Cache::new(cfg.l1_kib, cfg.l1_ways, cfg.line_bytes);
            let l2 = Cache::new(cfg.l2_kib, cfg.l2_ways, cfg.line_bytes);
            assert_eq!(l1.num_lines(), cfg.l1_kib * 1024 / cfg.line_bytes);
            assert_eq!(l2.num_lines(), cfg.l2_kib * 1024 / cfg.line_bytes);
        }
    }

    #[test]
    fn hit_rate_computation() {
        let mut c = Cache::new(2, 2, 32);
        c.access(0);
        c.access(0);
        c.access(0);
        assert!((c.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
