//! A set-associative cache model with LRU replacement.
//!
//! Caches in this simulator are *timing-only*: they never hold data, they
//! only decide which level of the hierarchy serves an access. Functional
//! values always come from the arena (plus the compiler-model store buffers),
//! which keeps timing and semantics cleanly separated.

/// Hit/miss counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses served by this cache.
    pub hits: u64,
    /// Accesses that had to go to the next level.
    pub misses: u64,
}

impl CacheStats {
    /// Hit rate in `0.0..=1.0`; zero when the cache was never accessed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A set-associative, LRU, timing-only cache.
#[derive(Debug, Clone)]
pub struct Cache {
    /// `tags[set * ways + way]`; `u64::MAX` marks an empty way.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    num_sets: u32,
    ways: u32,
    line_shift: u32,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache of `size_kib` KiB with `ways`-way associativity and
    /// `line_bytes`-byte lines.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two or the geometry doesn't
    /// yield at least one set.
    pub fn new(size_kib: u32, ways: u32, line_bytes: u32) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(ways >= 1, "need at least one way");
        let lines = size_kib * 1024 / line_bytes;
        let num_sets = (lines / ways).max(1);
        let slots = (num_sets * ways) as usize;
        Cache {
            tags: vec![u64::MAX; slots],
            stamps: vec![0; slots],
            num_sets,
            ways,
            line_shift: line_bytes.trailing_zeros(),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Looks up the line containing `addr`, allocating it on a miss.
    /// Returns `true` on a hit.
    #[inline]
    pub fn access(&mut self, addr: u32) -> bool {
        let line = (addr as u64) >> self.line_shift;
        let set = (line % self.num_sets as u64) as usize;
        let base = set * self.ways as usize;
        self.clock += 1;
        let ways = self.ways as usize;
        let mut victim = base;
        let mut victim_stamp = u64::MAX;
        for slot in base..base + ways {
            if self.tags[slot] == line {
                self.stamps[slot] = self.clock;
                self.stats.hits += 1;
                return true;
            }
            if self.stamps[slot] < victim_stamp {
                victim_stamp = self.stamps[slot];
                victim = slot;
            }
        }
        self.tags[victim] = line;
        self.stamps[victim] = self.clock;
        self.stats.misses += 1;
        false
    }

    /// Checks for the line without allocating or counting (probe).
    pub fn probe(&self, addr: u32) -> bool {
        let line = (addr as u64) >> self.line_shift;
        let set = (line % self.num_sets as u64) as usize;
        let base = set * self.ways as usize;
        self.tags[base..base + self.ways as usize].contains(&line)
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets counters (not contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(2, 2, 32);
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(31)); // same 32-byte line
        assert!(!c.access(32)); // next line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 2 KiB, 2-way, 32 B lines -> 32 sets. Three lines mapping to set 0:
        // line numbers 0, 32, 64 -> addrs 0, 32*32, 64*32.
        let mut c = Cache::new(2, 2, 32);
        assert!(!c.access(0));
        assert!(!c.access(32 * 32));
        assert!(c.access(0)); // refresh line 0
        assert!(!c.access(64 * 32)); // evicts line 32 (LRU)
        assert!(c.access(0));
        assert!(!c.access(32 * 32)); // was evicted
    }

    #[test]
    fn probe_does_not_allocate() {
        let mut c = Cache::new(2, 2, 32);
        assert!(!c.probe(0));
        assert!(!c.access(0));
        assert!(c.probe(0));
        assert_eq!(c.stats().hits + c.stats().misses, 1);
    }

    #[test]
    fn hit_rate_computation() {
        let mut c = Cache::new(2, 2, 32);
        c.access(0);
        c.access(0);
        c.access(0);
        assert!((c.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
