//! A set-associative cache model with LRU replacement.
//!
//! Caches in this simulator are *timing-only*: they never hold data, they
//! only decide which level of the hierarchy serves an access. Functional
//! values always come from the arena (plus the compiler-model store buffers),
//! which keeps timing and semantics cleanly separated.
//!
//! The lookup path is the hottest code in the whole simulator (every plain
//! load pays one to three cache lookups), so two representation choices are
//! made for speed — both provably invisible in hits, misses, evictions, and
//! stats (see `mtf_matches_stamp_lru` and `set_index_matches_modulo` below):
//!
//! - **Set indexing without division.** Power-of-two set counts use a mask;
//!   the paper GPUs' 768-set L1s (96 KiB / 4 ways / 32 B) use a Lemire-style
//!   fixed-point multiply that computes `line % num_sets` exactly for all
//!   32-bit line numbers. A hardware `div` costs more than the rest of the
//!   lookup combined.
//! - **Stamp-free LRU.** Instead of a global clock plus per-line stamps, the
//!   ways of each set are kept ordered most-recently-used first and rotated
//!   on touch (move-to-front). Recency *order* is all LRU ever consults, so
//!   dropping the stamps changes no replacement decision.

/// Hit/miss counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses served by this cache.
    pub hits: u64,
    /// Accesses that had to go to the next level.
    pub misses: u64,
}

impl CacheStats {
    /// Hit rate in `0.0..=1.0`; zero when the cache was never accessed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A set-associative, LRU, timing-only cache.
#[derive(Debug, Clone)]
pub struct Cache {
    /// `tags[set * ways + way]`, most-recently-used way first within each
    /// set; `u64::MAX` marks an empty way (line numbers are at most 32-bit,
    /// so no real line collides with the sentinel).
    tags: Vec<u64>,
    num_sets: u32,
    ways: u32,
    line_shift: u32,
    /// `num_sets - 1` when the set count is a power of two.
    set_mask: u64,
    /// `ceil(2^64 / num_sets)` for the fixed-point modulo; `0` selects the
    /// mask path instead.
    fastmod_m: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache of `size_kib` KiB with `ways`-way associativity and
    /// `line_bytes`-byte lines.
    ///
    /// The geometry must describe the configured capacity *exactly*: the
    /// cache holds `size_kib * 1024 / line_bytes` lines, which must be a
    /// positive multiple of `ways`. Anything else used to be silently
    /// repaired (`num_sets.max(1)` could double a 1-set cache's capacity,
    /// and `lines / ways` truncation could shrink it), which made the
    /// modeled hit rates lie about the configured hardware.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two, the cache is smaller
    /// than one line, `ways` exceeds the line count, or the line count is
    /// not a multiple of `ways`.
    pub fn new(size_kib: u32, ways: u32, line_bytes: u32) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(ways >= 1, "need at least one way");
        let lines = size_kib * 1024 / line_bytes;
        assert!(
            lines >= 1,
            "cache geometry: {size_kib} KiB cannot hold even one {line_bytes}-byte line"
        );
        assert!(
            ways <= lines,
            "cache geometry: {ways}-way associativity needs at least {ways} lines, \
             but {size_kib} KiB of {line_bytes}-byte lines holds only {lines}"
        );
        assert!(
            lines.is_multiple_of(ways),
            "cache geometry: {lines} lines ({size_kib} KiB / {line_bytes} B) do not \
             divide evenly into {ways} ways"
        );
        let num_sets = lines / ways;
        let slots = (num_sets * ways) as usize;
        let (set_mask, fastmod_m) = if num_sets.is_power_of_two() {
            ((num_sets - 1) as u64, 0)
        } else {
            // ceil(2^64 / num_sets): exact `line % num_sets` for any 32-bit
            // line via one wrapping multiply and one widening multiply.
            (0, u64::MAX / num_sets as u64 + 1)
        };
        Cache {
            tags: vec![u64::MAX; slots],
            num_sets,
            ways,
            line_shift: line_bytes.trailing_zeros(),
            set_mask,
            fastmod_m,
            stats: CacheStats::default(),
        }
    }

    /// `line % num_sets` without a hardware divide. Exact for all line
    /// numbers below 2^32 (addresses are `u32`, so always).
    #[inline(always)]
    fn set_index(&self, line: u64) -> usize {
        if self.fastmod_m == 0 {
            (line & self.set_mask) as usize
        } else {
            let frac = self.fastmod_m.wrapping_mul(line);
            ((frac as u128 * self.num_sets as u128) >> 64) as usize
        }
    }

    /// Looks up the line containing `addr`, allocating it on a miss.
    /// Returns `true` on a hit.
    #[inline]
    pub fn access(&mut self, addr: u32) -> bool {
        let line = (addr as u64) >> self.line_shift;
        let base = self.set_index(line) * self.ways as usize;
        let ways = self.ways as usize;
        // MRU way first: sequential re-references resolve on one compare.
        if self.tags[base] == line {
            self.stats.hits += 1;
            return true;
        }
        for i in 1..ways {
            if self.tags[base + i] == line {
                self.tags.copy_within(base..base + i, base + 1);
                self.tags[base] = line;
                self.stats.hits += 1;
                return true;
            }
        }
        // Miss: the last way is the LRU line (or an empty slot while the
        // set is still filling — empties sink to the back under rotation,
        // so free ways are always consumed before a real line is evicted).
        self.tags.copy_within(base..base + ways - 1, base + 1);
        self.tags[base] = line;
        self.stats.misses += 1;
        false
    }

    /// Checks for the line without allocating or counting (probe).
    pub fn probe(&self, addr: u32) -> bool {
        let line = (addr as u64) >> self.line_shift;
        let base = self.set_index(line) * self.ways as usize;
        self.tags[base..base + self.ways as usize].contains(&line)
    }

    /// Refreshes the recency of the line containing `addr` if (and only if)
    /// it is resident; never allocates and never counts toward hit/miss
    /// stats. Returns `true` when the line was present.
    ///
    /// This is the write-through no-allocate store path's half of LRU: a
    /// store to a cached line keeps the line hot without fetching anything.
    #[inline]
    pub fn touch(&mut self, addr: u32) -> bool {
        let line = (addr as u64) >> self.line_shift;
        let base = self.set_index(line) * self.ways as usize;
        if self.tags[base] == line {
            return true;
        }
        for i in 1..self.ways as usize {
            if self.tags[base + i] == line {
                self.tags.copy_within(base..base + i, base + 1);
                self.tags[base] = line;
                return true;
            }
        }
        false
    }

    /// Total number of lines the cache can hold (`sets × ways`), exactly
    /// the configured `size_kib * 1024 / line_bytes`.
    pub fn num_lines(&self) -> u32 {
        self.num_sets * self.ways
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets counters (not contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(2, 2, 32);
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(31)); // same 32-byte line
        assert!(!c.access(32)); // next line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 2 KiB, 2-way, 32 B lines -> 32 sets. Three lines mapping to set 0:
        // line numbers 0, 32, 64 -> addrs 0, 32*32, 64*32.
        let mut c = Cache::new(2, 2, 32);
        assert!(!c.access(0));
        assert!(!c.access(32 * 32));
        assert!(c.access(0)); // refresh line 0
        assert!(!c.access(64 * 32)); // evicts line 32 (LRU)
        assert!(c.access(0));
        assert!(!c.access(32 * 32)); // was evicted
    }

    #[test]
    fn probe_does_not_allocate() {
        let mut c = Cache::new(2, 2, 32);
        assert!(!c.probe(0));
        assert!(!c.access(0));
        assert!(c.probe(0));
        assert_eq!(c.stats().hits + c.stats().misses, 1);
    }

    #[test]
    fn touch_refreshes_recency_without_allocating_or_counting() {
        let mut c = Cache::new(2, 2, 32);
        // Touching an absent line is a no-op: no allocation, no stats.
        assert!(!c.touch(0));
        assert!(!c.access(0)); // still a miss
        assert!(!c.access(32 * 32)); // set 0 now holds lines {0, 32}, 32 MRU
        assert!(c.touch(0)); // refresh line 0 without counting
        assert!(!c.access(64 * 32)); // evicts line 32, the true LRU
        assert!(c.access(0)); // line 0 survived thanks to the touch
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 3);
    }

    #[test]
    fn capacity_matches_configured_size_exactly() {
        // Regression: `num_sets.max(1) * ways` used to inflate capacity when
        // `ways` exceeded the line count (1 KiB / 128 B = 8 lines but 16
        // slots for a 16-way request), and truncation shrank it when
        // `lines % ways != 0`. Valid geometries must come out exact.
        assert_eq!(Cache::new(1, 8, 128).num_lines(), 8);
        assert_eq!(Cache::new(2, 2, 32).num_lines(), 64);
        assert_eq!(Cache::new(96, 4, 32).num_lines(), 3072); // the paper GPUs' L1
    }

    #[test]
    #[should_panic(expected = "needs at least 16 lines")]
    fn overwide_associativity_rejected_not_inflated() {
        // 1 KiB of 128 B lines holds 8 lines; a 16-way config used to get
        // 16 slots (double the configured size) silently.
        let _ = Cache::new(1, 16, 128);
    }

    #[test]
    #[should_panic(expected = "do not divide evenly")]
    fn non_dividing_ways_rejected_not_truncated() {
        // 8 lines into 3 ways used to truncate to 2 sets * 3 ways = 6 lines.
        let _ = Cache::new(1, 3, 128);
    }

    #[test]
    #[should_panic(expected = "cannot hold even one")]
    fn sub_line_cache_rejected() {
        let _ = Cache::new(0, 1, 128);
    }

    #[test]
    fn paper_gpu_geometries_are_valid() {
        // Every preset GPU's L1/L2 must construct under the strict checks.
        for cfg in crate::GpuConfig::paper_gpus() {
            let l1 = Cache::new(cfg.l1_kib, cfg.l1_ways, cfg.line_bytes);
            let l2 = Cache::new(cfg.l2_kib, cfg.l2_ways, cfg.line_bytes);
            assert_eq!(l1.num_lines(), cfg.l1_kib * 1024 / cfg.line_bytes);
            assert_eq!(l2.num_lines(), cfg.l2_kib * 1024 / cfg.line_bytes);
        }
    }

    #[test]
    fn set_index_matches_modulo() {
        // The divisionless set index must equal `line % num_sets` exactly,
        // for both the mask path (power-of-two sets: test_tiny's 32, mask
        // 31) and the fixed-point path (the paper L1's 768 sets).
        for (kib, ways, line_bytes) in [(2u32, 2u32, 32u32), (96, 4, 32), (6, 3, 32), (1, 1, 32)] {
            let c = Cache::new(kib, ways, line_bytes);
            assert_eq!(c.num_sets, kib * 1024 / line_bytes / ways);
            for seed in 0u64..50_000 {
                // Cover small lines, large lines, and the full u32 range.
                let line = seed
                    .wrapping_mul(0x9e3779b97f4a7c15)
                    .rotate_left((seed % 64) as u32)
                    & 0xffff_ffff;
                assert_eq!(
                    c.set_index(line),
                    (line % c.num_sets as u64) as usize,
                    "line {line} sets {}",
                    c.num_sets
                );
            }
            // Boundary values.
            for line in [0u64, 1, u32::MAX as u64 - 1, u32::MAX as u64] {
                assert_eq!(c.set_index(line), (line % c.num_sets as u64) as usize);
            }
        }
    }

    #[test]
    fn mtf_matches_stamp_lru() {
        // Differential check of the move-to-front representation against a
        // straightforward stamp-based LRU reference, over a random-ish
        // access stream on a non-power-of-two geometry (6 KiB, 3-way, 32 B
        // -> 64 sets... 6*1024/32 = 192 lines / 3 = 64 sets; use (6,3,32)).
        struct RefLru {
            tags: Vec<u64>,
            stamps: Vec<u64>,
            sets: u64,
            ways: usize,
            clock: u64,
            hits: u64,
            misses: u64,
        }
        impl RefLru {
            fn access(&mut self, addr: u32) -> bool {
                let line = (addr as u64) >> 5;
                let base = (line % self.sets) as usize * self.ways;
                self.clock += 1;
                let mut victim = base;
                let mut victim_stamp = u64::MAX;
                for s in base..base + self.ways {
                    if self.tags[s] == line {
                        self.stamps[s] = self.clock;
                        self.hits += 1;
                        return true;
                    }
                    if self.stamps[s] < victim_stamp {
                        victim_stamp = self.stamps[s];
                        victim = s;
                    }
                }
                self.tags[victim] = line;
                self.stamps[victim] = self.clock;
                self.misses += 1;
                false
            }
        }
        let mut c = Cache::new(6, 3, 32);
        let mut r = RefLru {
            tags: vec![u64::MAX; 192],
            stamps: vec![0; 192],
            sets: 64,
            ways: 3,
            clock: 0,
            hits: 0,
            misses: 0,
        };
        let mut x = 0x5eedu64;
        for i in 0..200_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Mix tight reuse with far strides so hits and evictions both occur.
            let addr = if i % 3 == 0 {
                (x >> 40) as u32 & 0xfff
            } else {
                (x >> 33) as u32
            };
            assert_eq!(c.access(addr), r.access(addr), "access #{i} addr {addr}");
        }
        assert_eq!(c.stats().hits, r.hits);
        assert_eq!(c.stats().misses, r.misses);
        assert!(r.hits > 0 && r.misses > 0);
    }

    #[test]
    fn hit_rate_computation() {
        let mut c = Cache::new(2, 2, 32);
        c.access(0);
        c.access(0);
        c.access(0);
        assert!((c.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
