//! Seeded, deterministic fault injection.
//!
//! A [`FaultPlan`] describes *which* perturbations to inject and how often;
//! the running [`FaultState`] turns the plan into a deterministic schedule:
//! every injection decision consumes one counter tick of a SplitMix64 stream
//! seeded by the plan, so the same plan produces bit-for-bit the same fault
//! schedule — and therefore the same simulated cycles — on every run. That
//! determinism is what makes a fault-injection campaign debuggable: any
//! failing cell of a sweep replays exactly.
//!
//! Three fault classes model the hazards the paper's robustness argument
//! cares about:
//!
//! - **Transient single-bit flips** on load results served at a chosen
//!   memory level (DRAM, L2, or L1). The flip corrupts the value a thread
//!   observes, not the arena itself — a particle strike on a bus or cell
//!   that a subsequent read would not see. Race-free codes re-read through
//!   the coherence point more often, which is exactly the behavior the
//!   `fault_study` experiment measures.
//! - **Flush perturbations** in the [`crate::StoreVisibility`] compiler
//!   model: a scheduled yield-point drain may be *dropped* (stores stay in
//!   registers longer than the model promised) or an unscheduled drain
//!   *forced early*. Racy codes that depend on timely store visibility are
//!   sensitive to both.
//! - **Warp-scheduling jitter**: extra seeded rotation of the block
//!   interleaving order, widening the space of interleavings a single run
//!   explores.
//!
//! An optional fault *budget* bounds how many faults a launch may absorb
//! before the simulator refuses to continue
//! ([`crate::SimError::FaultBudgetExhausted`]).

use crate::mem::MemLevel;

/// Declarative description of the faults to inject. Construct with
/// [`FaultPlan::new`] and the `with_*` builders.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the injection-decision stream (independent of the scheduler
    /// seed, so fault schedules survive scheduler reseeding on retry).
    pub seed: u64,
    /// Probability that an eligible load has one bit flipped.
    pub bitflip_rate: f64,
    /// Loads are eligible when served at this memory level.
    pub bitflip_level: MemLevel,
    /// Probability that a scheduled yield-point store-buffer drain is
    /// dropped.
    pub flush_drop_rate: f64,
    /// Probability that an unscheduled drain is forced at a yield.
    pub flush_early_rate: f64,
    /// Adds seeded jitter to the scheduler's block rotation.
    pub sched_jitter: bool,
    /// Abort the launch once this many faults have been injected.
    pub max_faults: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing; combine with the `with_*` builders.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            bitflip_rate: 0.0,
            bitflip_level: MemLevel::Dram,
            flush_drop_rate: 0.0,
            flush_early_rate: 0.0,
            sched_jitter: false,
            max_faults: None,
        }
    }

    /// Flips one bit of a loaded value with probability `rate`, for loads
    /// served at `level`.
    pub fn with_bitflips(mut self, rate: f64, level: MemLevel) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        self.bitflip_rate = rate;
        self.bitflip_level = level;
        self
    }

    /// Perturbs the compiler model's drain schedule: scheduled drains are
    /// dropped with probability `drop_rate`, unscheduled drains forced with
    /// probability `early_rate`.
    pub fn with_flush_faults(mut self, drop_rate: f64, early_rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&drop_rate) && (0.0..=1.0).contains(&early_rate),
            "rates must be probabilities"
        );
        self.flush_drop_rate = drop_rate;
        self.flush_early_rate = early_rate;
        self
    }

    /// Adds seeded jitter to the warp scheduler's block rotation.
    pub fn with_sched_jitter(mut self) -> Self {
        self.sched_jitter = true;
        self
    }

    /// Aborts a launch with [`crate::SimError::FaultBudgetExhausted`] once
    /// `budget` faults have been injected.
    pub fn with_max_faults(mut self, budget: u64) -> Self {
        self.max_faults = Some(budget);
        self
    }

    /// True when the plan can inject at least one kind of fault.
    pub fn is_active(&self) -> bool {
        self.bitflip_rate > 0.0
            || self.flush_drop_rate > 0.0
            || self.flush_early_rate > 0.0
            || self.sched_jitter
    }
}

/// Counters describing what a [`FaultState`] actually injected. Two runs
/// with the same plan must produce identical reports — the determinism
/// property the fault-layer tests pin down.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct FaultReport {
    /// Decision-stream ticks consumed (every considered injection point).
    pub decisions: u64,
    /// Loads that had a bit flipped.
    pub bit_flips: u64,
    /// Scheduled drains that were dropped.
    pub dropped_flushes: u64,
    /// Unscheduled drains that were forced.
    pub early_flushes: u64,
    /// Scheduler rounds whose rotation was perturbed.
    pub sched_perturbations: u64,
}

impl FaultReport {
    /// Total faults injected (everything except bare decisions).
    pub fn total_injected(&self) -> u64 {
        self.bit_flips + self.dropped_flushes + self.early_flushes + self.sched_perturbations
    }
}

/// The running state of a plan: the decision stream position and the
/// injection counters. Owned by [`crate::Gpu`]; persists across launches so
/// the schedule keeps advancing through a multi-kernel algorithm.
#[derive(Debug, Clone)]
pub struct FaultState {
    pub(crate) plan: FaultPlan,
    counter: u64,
    report: FaultReport,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        FaultState {
            plan,
            counter: 0,
            report: FaultReport::default(),
        }
    }

    /// What has been injected so far.
    pub fn report(&self) -> &FaultReport {
        &self.report
    }

    /// Next word of the decision stream (SplitMix64 over seed + counter).
    fn next_word(&mut self) -> u64 {
        let mut z = self
            .plan
            .seed
            .wrapping_add(self.counter.wrapping_mul(0x9e3779b97f4a7c15));
        self.counter += 1;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// One Bernoulli decision at probability `rate`.
    fn decide(&mut self, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        self.report.decisions += 1;
        let r = (self.next_word() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        r < rate
    }

    /// Considers flipping one bit of a `width`-byte load served at `level`;
    /// returns the (possibly corrupted) bits.
    pub(crate) fn maybe_flip_bits(&mut self, bits: u64, width: u32, level: MemLevel) -> u64 {
        if level != self.plan.bitflip_level || !self.decide(self.plan.bitflip_rate) {
            return bits;
        }
        self.report.bit_flips += 1;
        let bit = self.next_word() % (width as u64 * 8);
        bits ^ (1u64 << bit)
    }

    /// Perturbs one yield-point drain decision. `scheduled` is what the
    /// compiler model would do; the return value is what actually happens.
    pub(crate) fn perturb_flush(&mut self, scheduled: bool) -> bool {
        if scheduled {
            if self.decide(self.plan.flush_drop_rate) {
                self.report.dropped_flushes += 1;
                return false;
            }
        } else if self.decide(self.plan.flush_early_rate) {
            self.report.early_flushes += 1;
            return true;
        }
        scheduled
    }

    /// Extra rotation (in `[0, wave_len)`) for one scheduler round.
    pub(crate) fn sched_jitter(&mut self, wave_len: u64) -> u64 {
        if !self.plan.sched_jitter || wave_len <= 1 {
            return 0;
        }
        self.report.decisions += 1;
        let j = self.next_word() % wave_len;
        if j != 0 {
            self.report.sched_perturbations += 1;
        }
        j
    }

    /// True once the injected-fault count has reached the plan's budget.
    pub(crate) fn budget_exhausted(&self) -> bool {
        self.plan
            .max_faults
            .is_some_and(|max| self.report.total_injected() >= max)
    }

    /// The configured budget (for error reporting).
    pub(crate) fn budget(&self) -> u64 {
        self.plan.max_faults.unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_plan_injects_nothing() {
        let mut s = FaultState::new(FaultPlan::new(7));
        for i in 0..1000 {
            assert_eq!(s.maybe_flip_bits(i, 4, MemLevel::Dram), i);
            assert!(s.perturb_flush(true));
            assert!(!s.perturb_flush(false));
            assert_eq!(s.sched_jitter(8), 0);
        }
        assert_eq!(s.report(), &FaultReport::default());
    }

    #[test]
    fn schedule_is_deterministic() {
        let plan = FaultPlan::new(42)
            .with_bitflips(0.25, MemLevel::L2)
            .with_flush_faults(0.1, 0.1)
            .with_sched_jitter();
        let run = |plan: FaultPlan| {
            let mut s = FaultState::new(plan);
            let mut out = Vec::new();
            for i in 0..500u64 {
                out.push(s.maybe_flip_bits(i, 8, MemLevel::L2));
                out.push(s.perturb_flush(i % 2 == 0) as u64);
                out.push(s.sched_jitter(16));
            }
            (out, s.report().clone())
        };
        let (a, ra) = run(plan.clone());
        let (b, rb) = run(plan);
        assert_eq!(a, b);
        assert_eq!(ra, rb);
        assert!(ra.total_injected() > 0, "a 25% plan must inject something");
    }

    #[test]
    fn flips_are_single_bit_and_level_gated() {
        let plan = FaultPlan::new(1).with_bitflips(1.0, MemLevel::Dram);
        let mut s = FaultState::new(plan);
        // Wrong level: untouched, no decision spent on the flip itself.
        assert_eq!(s.maybe_flip_bits(0xff, 4, MemLevel::L1), 0xff);
        // Right level at rate 1.0: exactly one bit differs.
        let flipped = s.maybe_flip_bits(0xff00ff00, 4, MemLevel::Dram);
        assert_eq!((flipped ^ 0xff00ff00).count_ones(), 1);
        // Width bounds the flipped bit.
        let flipped = s.maybe_flip_bits(0, 1, MemLevel::Dram);
        assert!(flipped < 256, "1-byte load must flip within its 8 bits");
    }

    #[test]
    fn budget_counts_injections() {
        let plan = FaultPlan::new(9)
            .with_bitflips(1.0, MemLevel::Dram)
            .with_max_faults(3);
        let mut s = FaultState::new(plan);
        for i in 0..3 {
            assert!(!s.budget_exhausted(), "not exhausted after {i} faults");
            s.maybe_flip_bits(0, 4, MemLevel::Dram);
        }
        assert!(s.budget_exhausted());
        assert_eq!(s.budget(), 3);
    }
}
