//! Access-level kernel IR: each kernel's per-thread body as a typed op list.
//!
//! The suite's kernels are closures — fast to interpret, opaque to tooling.
//! This module adds the transformable representation ROADMAP item 1 asks
//! for: a [`KernelIr`] lists every *shape* of shared-memory access the
//! kernel body issues ([`AccessOp`]: load/store/monotonic-update/flag/RMW
//! with address space, width, access mode, index discipline, and the
//! region/phase markers the static checker consumes). The closure path stays
//! the execution backend; the IR is the single source of truth that
//!
//! - **lowers** to the kernel's [`KernelContract`] ([`KernelIr::lower`]),
//!   reproducing bit-identically the footprints the hand-written contract
//!   builders used to produce (the existing census, sanitizer, and
//!   differential tests pin this), and
//! - **drives execution** of synthesized variants: a [`ModeTable`] derived
//!   from a (possibly repaired) IR tells the `IrDriven` access policy in
//!   `ecl-core` which [`AccessMode`] each policy-mediated site must use,
//!   so a repaired IR runs without writing new kernel code.
//!
//! The repair pass in `ecl-analyze` rewrites flagged [`AccessOp`]s from
//! plain/volatile to relaxed atomics (the paper's §III recipe, including the
//! typecast-and-mask byte transform and the packed-pair half updates) and
//! re-lowers, giving a machine-checkable path from detector output to a
//! verified race-free variant.

use std::collections::HashMap;

use crate::access::{AccessKind, AccessMode};
use crate::contract::{BenignClass, FootprintEntry, IndexDiscipline, KernelContract};
use crate::trace::Space;

/// What a kernel does to a buffer at one access site.
///
/// `Update` and `Flag` are *composite* shapes: they name the paper's
/// monotonic max-update and idempotent flag-raise idioms, whose lowering
/// (and repair) differs from a bare load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OpKind {
    /// A read of the value.
    Load,
    /// A write of a computed value.
    Store,
    /// A monotonic max-update: racy load + conditional store in the
    /// baselines, one `atomicMax` when the mode is atomic.
    Update,
    /// Raising a flag to the constant 1 — idempotent under any interleaving.
    Flag,
    /// An intrinsically atomic read-modify-write (tickets, CAS hooks,
    /// counters): atomic in every variant, never a repair target.
    Rmw,
}

/// Access width at the site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OpWidth {
    /// A byte element of a `u8` array (MIS statuses, MST edge flags).
    /// Atomic-mode byte accesses use the paper's Fig. 3–4 typecast-and-mask
    /// transform on the containing word.
    B1,
    /// A `u32` word.
    B4,
    /// A `u64` double word.
    B8,
    /// One `u32` half of a pair packed in a `u64` (SCC's `int2`, Fig. 5).
    Pair,
}

impl OpWidth {
    /// Bytes per element of the underlying array.
    pub fn elem_bytes(self) -> u32 {
        match self {
            OpWidth::B1 => 1,
            OpWidth::B4 => 4,
            OpWidth::B8 | OpWidth::Pair => 8,
        }
    }
}

/// One access site of a kernel body: the complete static description the
/// checker, the sanitizer, and the repair pass need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessOp {
    /// Named allocation ([`crate::Gpu::alloc_named`]) or
    /// [`crate::contract::SHARED_BUFFER`].
    pub buffer: &'static str,
    /// Address space.
    pub space: Space,
    /// What the site does.
    pub kind: OpKind,
    /// Element width.
    pub width: OpWidth,
    /// The access mode the site issues (for `Rmw` always atomic).
    pub mode: AccessMode,
    /// Which elements each thread may touch.
    pub discipline: IndexDiscipline,
    /// Declared-disjoint region tag (see [`FootprintEntry::region`]).
    pub region: Option<&'static str>,
    /// Barrier-phase tag for shared-memory sites.
    pub phase: Option<u8>,
    /// Benign class for baseline conflicts involving this site.
    pub benign: Option<BenignClass>,
    /// `true` when the site is issued through the `AccessPolicy` layer and
    /// the repair pass may rewrite its mode. `false` for sites the kernel
    /// body hard-codes (CSR structure loads, launch-ordered init stores,
    /// ticketed worklist slots) — rewriting those would require new kernel
    /// code, and the detector never flags them.
    pub repairable: bool,
}

impl AccessOp {
    fn new(
        buffer: &'static str,
        kind: OpKind,
        width: OpWidth,
        mode: AccessMode,
        discipline: IndexDiscipline,
    ) -> Self {
        AccessOp {
            buffer,
            space: Space::Global,
            kind,
            width,
            mode,
            discipline,
            region: None,
            phase: None,
            benign: None,
            repairable: !matches!(kind, OpKind::Rmw),
        }
    }

    /// A global-memory load site.
    pub fn load(
        buffer: &'static str,
        width: OpWidth,
        mode: AccessMode,
        discipline: IndexDiscipline,
    ) -> Self {
        AccessOp::new(buffer, OpKind::Load, width, mode, discipline)
    }

    /// A global-memory store site.
    pub fn store(
        buffer: &'static str,
        width: OpWidth,
        mode: AccessMode,
        discipline: IndexDiscipline,
    ) -> Self {
        AccessOp::new(buffer, OpKind::Store, width, mode, discipline)
    }

    /// A monotonic max-update site. The baselines read, test, and write
    /// non-atomically over arbitrary indices; the atomic mode is one RMW.
    pub fn update(buffer: &'static str, width: OpWidth, mode: AccessMode) -> Self {
        AccessOp::new(
            buffer,
            OpKind::Update,
            width,
            mode,
            IndexDiscipline::Arbitrary,
        )
    }

    /// A flag-raise site (store of the constant 1, idempotent).
    pub fn flag(buffer: &'static str, mode: AccessMode) -> Self {
        AccessOp::new(
            buffer,
            OpKind::Flag,
            OpWidth::B4,
            mode,
            IndexDiscipline::Arbitrary,
        )
        .benign(BenignClass::IdempotentWrite)
    }

    /// An intrinsically atomic read-modify-write site (never repairable).
    pub fn rmw(buffer: &'static str) -> Self {
        AccessOp::new(
            buffer,
            OpKind::Rmw,
            OpWidth::B4,
            AccessMode::Atomic,
            IndexDiscipline::Arbitrary,
        )
    }

    /// Moves the site to per-block shared memory.
    pub fn shared(mut self) -> Self {
        self.space = Space::Shared;
        self.buffer = crate::contract::SHARED_BUFFER;
        self
    }

    /// Tags the site with a declared-disjoint region.
    pub fn region(mut self, tag: &'static str) -> Self {
        self.region = Some(tag);
        self
    }

    /// Tags the site with a barrier-phase number.
    pub fn phase(mut self, phase: u8) -> Self {
        self.phase = Some(phase);
        self
    }

    /// Assigns the benign class for baseline conflicts at this site.
    pub fn benign(mut self, class: BenignClass) -> Self {
        self.benign = Some(class);
        self
    }

    /// Marks the site as hard-coded in the kernel body (not policy-mediated,
    /// not a repair target).
    pub fn fixed(mut self) -> Self {
        self.repairable = false;
        self
    }

    /// Rewrites the site's mode to relaxed atomic — the repair pass's one
    /// transform. Returns `true` if the mode changed.
    ///
    /// # Panics
    ///
    /// Panics if the site is not repairable; callers must filter on
    /// [`AccessOp::repairable`] first.
    pub fn make_atomic(&mut self) -> bool {
        assert!(self.repairable, "cannot repair a fixed access site");
        if self.mode == AccessMode::Atomic {
            return false;
        }
        self.mode = AccessMode::Atomic;
        true
    }

    /// True when the atomic form of this site needs the typecast-and-mask
    /// (sub-word) or pair-half transform rather than a same-width atomic.
    pub fn needs_mask_transform(&self) -> bool {
        matches!(self.width, OpWidth::B1 | OpWidth::Pair)
    }

    fn entry(
        &self,
        mode: AccessMode,
        kind: AccessKind,
        discipline: IndexDiscipline,
    ) -> FootprintEntry {
        let mut e = match self.space {
            Space::Global => FootprintEntry::global(self.buffer, mode, kind, discipline),
            Space::Shared => FootprintEntry::shared(mode, kind, discipline),
        };
        if let Some(tag) = self.region {
            e = e.region(tag);
        }
        if let Some(p) = self.phase {
            e = e.phase(p);
        }
        e
    }

    fn entry_benign(
        &self,
        mode: AccessMode,
        kind: AccessKind,
        discipline: IndexDiscipline,
    ) -> FootprintEntry {
        let e = self.entry(mode, kind, discipline);
        match self.benign {
            Some(class) => e.benign(class),
            None => e,
        }
    }

    /// Lowers the op to the footprint entries the closure backend actually
    /// issues for it — the shapes the hand-written contract builders
    /// declared before the IR existed. Composite ops expand:
    ///
    /// - atomic byte loads read the containing word (Fig. 3b), so the entry
    ///   widens to an arbitrary-index word load;
    /// - atomic byte stores are an `atomicAnd` or a load+CAS loop on the
    ///   containing word (Fig. 4b): an atomic load plus an atomic RMW;
    /// - atomic updates become an atomic load + `atomicMax` pair, while
    ///   non-atomic updates are the racy load + conditional store (both
    ///   halves benign-tagged);
    /// - flags lower to their store.
    pub fn lower(&self) -> Vec<FootprintEntry> {
        use AccessKind::{Load, Rmw, Store};
        let atomic = self.mode == AccessMode::Atomic;
        match self.kind {
            OpKind::Load => {
                if self.width == OpWidth::B1 && atomic {
                    // The word load spans four threads' bytes: any owned
                    // discipline on the byte array dissolves to Arbitrary.
                    vec![self.entry_benign(AccessMode::Atomic, Load, IndexDiscipline::Arbitrary)]
                } else {
                    vec![self.entry_benign(self.mode, Load, self.discipline)]
                }
            }
            OpKind::Store => {
                if self.width == OpWidth::B1 && atomic {
                    vec![
                        self.entry_benign(AccessMode::Atomic, Load, IndexDiscipline::Arbitrary),
                        self.entry_benign(AccessMode::Atomic, Rmw, IndexDiscipline::Arbitrary),
                    ]
                } else {
                    vec![self.entry_benign(self.mode, Store, self.discipline)]
                }
            }
            OpKind::Update => {
                if atomic {
                    // One atomicMax per update; the load entry admits the
                    // read half of read-then-max idioms. The race is gone,
                    // so no benign tag survives the conversion.
                    vec![
                        self.entry(AccessMode::Atomic, Load, IndexDiscipline::Arbitrary),
                        self.entry(AccessMode::Atomic, Rmw, IndexDiscipline::Arbitrary),
                    ]
                } else {
                    vec![
                        self.entry_benign(self.mode, Load, IndexDiscipline::Arbitrary),
                        self.entry_benign(self.mode, Store, IndexDiscipline::Arbitrary),
                    ]
                }
            }
            OpKind::Flag => vec![self.entry_benign(self.mode, Store, IndexDiscipline::Arbitrary)],
            OpKind::Rmw => {
                vec![self.entry_benign(AccessMode::Atomic, Rmw, IndexDiscipline::Arbitrary)]
            }
        }
    }
}

/// The access-level IR of one kernel: its name plus every access site of
/// its per-thread body, in program order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelIr {
    /// Kernel name, as reported by [`crate::Kernel::name`].
    pub kernel: &'static str,
    /// The body's access sites in program order.
    pub ops: Vec<AccessOp>,
}

impl KernelIr {
    /// An empty IR for `kernel`.
    pub fn new(kernel: &'static str) -> Self {
        KernelIr {
            kernel,
            ops: Vec::new(),
        }
    }

    /// Appends an op (builder style).
    pub fn op(mut self, op: AccessOp) -> Self {
        self.ops.push(op);
        self
    }

    /// Appends many ops (builder style).
    pub fn ops(mut self, ops: impl IntoIterator<Item = AccessOp>) -> Self {
        self.ops.extend(ops);
        self
    }

    /// Lowers the IR to the kernel's declared contract. Duplicate lowered
    /// shapes collapse to the first occurrence, exactly as the hand-written
    /// `KernelContract` builders behaved.
    pub fn lower(&self) -> KernelContract {
        KernelContract::new(self.kernel).entries(self.ops.iter().flat_map(AccessOp::lower))
    }

    /// The ops the repair pass may rewrite.
    pub fn repairable_ops(&self) -> impl Iterator<Item = &AccessOp> {
        self.ops.iter().filter(|o| o.repairable)
    }
}

/// Lowers a whole pipeline of kernel IRs to contracts.
pub fn lower_all(irs: &[KernelIr]) -> Vec<KernelContract> {
    irs.iter().map(KernelIr::lower).collect()
}

/// The access modes one `(kernel, buffer)` group's policy-mediated sites
/// use: reads and writes may differ (the baseline MIS reads `volatile` but
/// writes plain — the split the paper blames for its slowdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModePair {
    /// Mode for loads (and the read half of updates).
    pub read: AccessMode,
    /// Mode for stores, flag raises, and the write half of updates.
    pub write: AccessMode,
}

/// Per-`(kernel, buffer)` access-mode dispatch table, derived from a kernel
/// IR and installed on a device ([`crate::Gpu::install_mode_table`]) to
/// execute that IR through the `IrDriven` access policy: every
/// policy-mediated access looks up the mode the IR prescribes for its
/// kernel and buffer. Missing entries are a *bug in the IR* (a
/// policy-mediated site the IR does not describe), so lookups are expected
/// to be total; `IrDriven` panics loudly on a miss rather than guessing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ModeTable {
    entries: HashMap<(String, String), ModePair>,
}

impl ModeTable {
    /// An empty table (every policy-mediated access panics — only usable
    /// for kernels with no policy-mediated sites, like APSP).
    pub fn new() -> Self {
        ModeTable::default()
    }

    /// Derives the dispatch table from an IR pipeline: one [`ModePair`] per
    /// `(kernel, buffer)` with at least one repairable op.
    ///
    /// # Panics
    ///
    /// Panics if two repairable ops of the same kernel and buffer disagree
    /// on the mode for the same side (the repair pass flips whole groups, so
    /// a disagreement means a malformed IR).
    pub fn from_ir(irs: &[KernelIr]) -> Self {
        // Collect each side separately so a read-only group still gets a
        // coherent write mode (and vice versa) without false conflicts.
        let mut sides: HashMap<(String, String), (Option<AccessMode>, Option<AccessMode>)> =
            HashMap::new();
        for ir in irs {
            for op in ir.repairable_ops() {
                let (read, write) = match op.kind {
                    OpKind::Load => (Some(op.mode), None),
                    OpKind::Store | OpKind::Flag => (None, Some(op.mode)),
                    OpKind::Update => (Some(op.mode), Some(op.mode)),
                    OpKind::Rmw => unreachable!("rmw ops are never repairable"),
                };
                let slot = sides
                    .entry((ir.kernel.to_string(), op.buffer.to_string()))
                    .or_default();
                slot.0 = reconcile(slot.0, read, ir.kernel, op.buffer, "read");
                slot.1 = reconcile(slot.1, write, ir.kernel, op.buffer, "write");
            }
        }
        let entries = sides
            .into_iter()
            .map(|(key, (read, write))| {
                let pair = ModePair {
                    read: read.or(write).unwrap(),
                    write: write.or(read).unwrap(),
                };
                (key, pair)
            })
            .collect();
        ModeTable { entries }
    }

    /// Looks up the modes for one `(kernel, buffer)` group.
    pub fn get(&self, kernel: &str, buffer: &str) -> Option<ModePair> {
        self.entries
            .get(&(kernel.to_string(), buffer.to_string()))
            .copied()
    }

    /// Number of `(kernel, buffer)` groups in the table.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no group is mapped.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The groups in deterministic (sorted) order, for reports.
    pub fn groups(&self) -> Vec<(String, String, ModePair)> {
        let mut v: Vec<_> = self
            .entries
            .iter()
            .map(|((k, b), m)| (k.clone(), b.clone(), *m))
            .collect();
        v.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        v
    }
}

fn reconcile(
    old: Option<AccessMode>,
    new: Option<AccessMode>,
    kernel: &str,
    buffer: &str,
    side: &str,
) -> Option<AccessMode> {
    match (old, new) {
        (Some(a), Some(b)) => {
            assert!(
                a == b,
                "mode table conflict: {kernel}/{buffer} {side}s both {a:?} and {b:?}"
            );
            Some(a)
        }
        (a, b) => a.or(b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessKind;

    #[test]
    fn plain_word_ops_lower_to_single_entries() {
        let own4 = IndexDiscipline::OwnedByGlobalId { elem_bytes: 4 };
        let op = AccessOp::store("label", OpWidth::B4, AccessMode::Plain, own4);
        let lowered = op.lower();
        assert_eq!(lowered.len(), 1);
        assert_eq!(lowered[0].mode, AccessMode::Plain);
        assert_eq!(lowered[0].kind, AccessKind::Store);
        assert_eq!(lowered[0].discipline, own4);
    }

    #[test]
    fn atomic_byte_store_lowers_to_word_load_plus_rmw() {
        let own1 = IndexDiscipline::OwnedByGlobalId { elem_bytes: 1 };
        let op = AccessOp::store("stat", OpWidth::B1, AccessMode::Atomic, own1);
        let lowered = op.lower();
        assert_eq!(lowered.len(), 2);
        assert_eq!(lowered[0].kind, AccessKind::Load);
        assert_eq!(lowered[1].kind, AccessKind::Rmw);
        // The containing word spans other threads' bytes.
        assert!(lowered
            .iter()
            .all(|e| e.discipline == IndexDiscipline::Arbitrary));
        assert!(lowered.iter().all(|e| e.mode == AccessMode::Atomic));
    }

    #[test]
    fn update_drops_benign_tag_when_atomic() {
        let racy = AccessOp::update("pair", OpWidth::Pair, AccessMode::Plain)
            .benign(BenignClass::MonotonicUpdate);
        let racy_entries = racy.lower();
        assert!(racy_entries.iter().all(|e| e.benign.is_some()));
        let mut fixed = racy.clone();
        assert!(fixed.make_atomic());
        let fixed_entries = fixed.lower();
        assert_eq!(fixed_entries.len(), 2);
        assert!(fixed_entries.iter().all(|e| e.benign.is_none()));
        assert_eq!(fixed_entries[1].kind, AccessKind::Rmw);
    }

    #[test]
    fn rmw_ops_are_not_repairable() {
        assert!(!AccessOp::rmw("count").repairable);
        assert!(
            AccessOp::load(
                "x",
                OpWidth::B4,
                AccessMode::Plain,
                IndexDiscipline::Arbitrary
            )
            .repairable
        );
    }

    #[test]
    fn lowering_dedups_like_the_contract_builders() {
        let arb = IndexDiscipline::Arbitrary;
        let ir = KernelIr::new("k")
            .op(AccessOp::load("a", OpWidth::B4, AccessMode::Plain, arb))
            .op(AccessOp::load("a", OpWidth::B4, AccessMode::Plain, arb));
        assert_eq!(ir.lower().entries.len(), 1);
    }

    #[test]
    fn mode_table_splits_read_and_write_sides() {
        let arb = IndexDiscipline::Arbitrary;
        let ir = KernelIr::new("poll")
            .op(AccessOp::load(
                "stat",
                OpWidth::B1,
                AccessMode::Volatile,
                arb,
            ))
            .op(AccessOp::store("stat", OpWidth::B1, AccessMode::Plain, arb));
        let table = ModeTable::from_ir(&[ir]);
        let pair = table.get("poll", "stat").unwrap();
        assert_eq!(pair.read, AccessMode::Volatile);
        assert_eq!(pair.write, AccessMode::Plain);
        assert!(table.get("poll", "other").is_none());
    }

    #[test]
    #[should_panic(expected = "mode table conflict")]
    fn mode_table_rejects_incoherent_sides() {
        let arb = IndexDiscipline::Arbitrary;
        let ir = KernelIr::new("k")
            .op(AccessOp::store("b", OpWidth::B4, AccessMode::Plain, arb))
            .op(AccessOp::store("b", OpWidth::B4, AccessMode::Atomic, arb));
        ModeTable::from_ir(&[ir]);
    }

    #[test]
    fn fixed_ops_stay_out_of_the_mode_table() {
        let own4 = IndexDiscipline::OwnedByGlobalId { elem_bytes: 4 };
        let ir = KernelIr::new("init").op(AccessOp::store(
            "scc_id",
            OpWidth::B4,
            AccessMode::Plain,
            own4,
        )
        .fixed());
        assert!(ModeTable::from_ir(&[ir]).is_empty());
    }
}
