//! Kernel execution: cooperatively-scheduled thread coroutines on SMs.
//!
//! Device threads are written as *coroutines*: a [`Kernel`] holds the shared
//! code and buffers, each thread gets a plain-data state, and
//! [`Kernel::step`] advances one thread by a bounded amount of work. A step
//! may end with [`Step::Yield`] (more work to do, or spinning on another
//! thread's store — the scheduler will resume it later), [`Step::Barrier`]
//! (block-wide `__syncthreads`), or [`Step::Done`].
//!
//! The scheduler interleaves all resident threads round-robin with seeded
//! jitter, which is what makes data races and visibility delays actually
//! manifest, instead of being theoretical.

use crate::access::{AccessKind, AccessMode, MemOrder, Scope};
use crate::config::GpuConfig;
use crate::contract::SanitizerState;
use crate::error::{self, SimError};
use crate::fault::FaultState;
use crate::mem::{DevicePtr, DeviceValue, MemLevel, MemSystem, Memory};
use crate::metrics::KernelStats;
use crate::trace::{AccessEvent, Space, Trace};

/// Result of one coroutine step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// The thread has more work (or is polling); resume it later.
    Yield,
    /// The thread reached a block-wide barrier (`__syncthreads()`).
    Barrier,
    /// The thread finished.
    Done,
}

/// When the compiler model makes a thread's *plain* stores visible to the
/// rest of the device (paper §II-A, §VI-A).
///
/// `volatile` and atomic stores are always immediate; this knob only models
/// what an optimizing compiler may do to ordinary stores — keep them in
/// registers and write them back late, possibly coalescing several stores to
/// the same location into one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreVisibility {
    /// Every plain store drains to memory at once (an unoptimized build).
    Immediate,
    /// Plain stores drain when the thread yields the scheduler (roughly: at
    /// the next loop back-edge the compiler cannot see through).
    DeferUntilYield,
    /// A deterministic fraction of plain stores (`eighths / 8`, selected by
    /// address hash) drains only at every `every`-th yield: the compiler
    /// keeps *some* values in registers across iterations of the polling
    /// loop ("the compiler may 'optimize' some of these accesses", §VI-A),
    /// so other threads observe those updates several scheduler rounds late.
    /// Bounded staleness — this can never livelock.
    DeferBounded {
        /// Drain the deferred stores at every `every`-th yield.
        every: u32,
        /// How many of every 8 store addresses are deferred (0..=8).
        eighths: u8,
    },
    /// Plain stores stay in "registers" until the thread finishes or the
    /// buffer overflows — the most aggressive deferral.
    DeferUntilDone,
}

/// Identity of a thread, passed to [`Kernel::init`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadInfo {
    /// Global thread id in `0..num_threads`.
    pub global_id: u32,
    /// Total threads in the launch.
    pub num_threads: u32,
    /// Block index.
    pub block: u32,
    /// Thread index within the block.
    pub thread_in_block: u32,
}

/// Compile-time selector for the interpreter's hot/slow path split.
///
/// The simulator's per-access observation hooks — tracing, fault injection,
/// contract sanitizing — are `Option` checks on every single memory access
/// when compiled in. [`Hooks`] lifts that decision to a type parameter
/// monomorphized once per launch: [`NoHooks`] compiles the hook code out of
/// the access path entirely (the *fast path*), [`FullHooks`] keeps it (the
/// *slow path*, and the default everywhere for backward compatibility).
///
/// The two paths are bit-identical in results, cycle counts, and cache
/// stats whenever no hook is armed — hooks only ever observe (tracing),
/// enforce (sanitizer), or are absent (faults) — which is pinned by the
/// `fastpath_equivalence` differential test across every algorithm×variant
/// combination. [`crate::Gpu::fast_path_eligible`] reports whether a launch
/// may take the fast path.
pub trait Hooks: Copy + Default + 'static {
    /// Whether per-access hook code is compiled into the interpreter loop.
    const HOOKED: bool;
}

/// The fully-hooked interpreter path: tracing, fault injection, and the
/// contract sanitizer are honored. This is the default [`Kernel`]
/// instantiation, so existing `impl Kernel for T` and [`crate::Gpu::launch`]
/// users get it implicitly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FullHooks;

/// The monomorphized fast path: all per-access hook code compiles away.
/// Only valid when no hook is armed (enforced by
/// [`crate::Gpu::try_launch_with`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoHooks;

impl Hooks for FullHooks {
    const HOOKED: bool = true;
}

impl Hooks for NoHooks {
    const HOOKED: bool = false;
}

/// A device kernel: shared code + per-thread plain-data state.
///
/// The `H` parameter selects the interpreter path the kernel's steps run
/// on; it defaults to [`FullHooks`] so ordinary `impl Kernel for T` keeps
/// meaning what it always did. Kernels that want to run on the fast path
/// implement `Kernel<H>` generically (closure-based [`ForEach`] kernels get
/// this from a blanket impl).
pub trait Kernel<H: Hooks = FullHooks> {
    /// Per-thread coroutine state.
    type State;

    /// Kernel name, for stats and race reports.
    fn name(&self) -> &str;

    /// Creates the initial state for one thread.
    fn init(&self, info: ThreadInfo) -> Self::State;

    /// Advances one thread by a bounded amount of work.
    fn step(&self, state: &mut Self::State, ctx: &mut Ctx<'_, H>) -> Step;
}

/// Launch geometry and compiler model for one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of thread blocks.
    pub grid_blocks: u32,
    /// Threads per block.
    pub block_threads: u32,
    /// Plain-store visibility (the compiler model).
    pub store_visibility: StoreVisibility,
    /// Bytes of per-block shared memory.
    pub shared_bytes: u32,
    /// When `true`, the launch geometry is used exactly (needed by kernels
    /// that map blocks to data tiles); otherwise the grid is clamped to the
    /// device's resident-thread capacity and kernels are expected to be
    /// grid-stride.
    pub exact_geometry: bool,
}

impl LaunchConfig {
    /// A grid-stride launch sized for `items` work items: 256-thread blocks,
    /// at most 128 of them, clamped to device capacity at launch time.
    pub fn for_items(items: u32) -> Self {
        let blocks = items.div_ceil(256).clamp(1, 128);
        LaunchConfig {
            grid_blocks: blocks,
            block_threads: 256,
            store_visibility: StoreVisibility::Immediate,
            shared_bytes: 0,
            exact_geometry: false,
        }
    }

    /// Sets the plain-store visibility model.
    pub fn with_visibility(mut self, v: StoreVisibility) -> Self {
        self.store_visibility = v;
        self
    }

    /// Sets the per-block shared memory size.
    pub fn with_shared_bytes(mut self, bytes: u32) -> Self {
        self.shared_bytes = bytes;
        self
    }

    /// Requests the exact grid geometry (no capacity clamping; overflow is a
    /// launch failure, as on real hardware with cooperative launches).
    pub fn exact(mut self) -> Self {
        self.exact_geometry = true;
        self
    }
}

/// A ready-made [`Kernel`] that applies a closure to every item of a range
/// with a grid-stride loop — the shape of most ECL kernels that do not spin.
///
/// The closure runs to completion per item; the thread yields to the
/// scheduler every [`ForEach::with_chunk`] items (default 8) so other
/// threads interleave.
pub struct ForEach<F> {
    name: String,
    items: u32,
    chunk: u32,
    f: F,
}

impl<F: Fn(&mut Ctx<'_>, u32)> ForEach<F> {
    /// Creates a kernel that calls `f(ctx, i)` for every `i in 0..items`.
    ///
    /// The closure is bound to the default fully-hooked context, which is
    /// what closure parameter inference needs at the construction site. Code
    /// generic over the interpreter path uses [`ForEach::with_hooks`]
    /// instead.
    pub fn new(name: &str, items: u32, f: F) -> Self {
        ForEach {
            name: name.to_string(),
            items,
            chunk: 8,
            f,
        }
    }
}

impl<F> ForEach<F> {
    /// Creates a kernel like [`ForEach::new`], but with the closure bound to
    /// an explicit interpreter path `H` — `ForEach::with_hooks::<H>(...)`
    /// inside a function generic over `H: Hooks` is how the algorithm crates
    /// build kernels that monomorphize onto the fast path.
    pub fn with_hooks<H: Hooks>(name: &str, items: u32, f: F) -> Self
    where
        F: Fn(&mut Ctx<'_, H>, u32),
    {
        ForEach {
            name: name.to_string(),
            items,
            chunk: 8,
            f,
        }
    }

    /// Sets how many items a thread processes between yields (default 8).
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn with_chunk(mut self, chunk: u32) -> Self {
        assert!(chunk > 0, "chunk must be positive");
        self.chunk = chunk;
        self
    }
}

impl<H: Hooks, F: Fn(&mut Ctx<'_, H>, u32)> Kernel<H> for ForEach<F> {
    type State = u32;

    fn name(&self) -> &str {
        &self.name
    }

    fn init(&self, info: ThreadInfo) -> u32 {
        info.global_id
    }

    fn step(&self, next: &mut u32, ctx: &mut Ctx<'_, H>) -> Step {
        let stride = ctx.num_threads();
        let mut processed = 0;
        while *next < self.items {
            (self.f)(ctx, *next);
            *next += stride;
            processed += 1;
            if processed >= self.chunk {
                return if *next < self.items {
                    Step::Yield
                } else {
                    Step::Done
                };
            }
        }
        Step::Done
    }
}

/// One deferred plain store held in a thread's "registers".
#[derive(Debug, Clone, Copy)]
struct StoreEntry {
    addr: u32,
    width: u32,
    bits: u64,
}

/// Fixed-capacity per-thread store buffer (the compiler's register file for
/// deferred stores). Overflow drains the oldest entry, like register
/// pressure forcing a writeback.
#[derive(Debug, Clone)]
struct StoreBuf {
    entries: Vec<StoreEntry>,
}

/// GPU register files are large (up to 255 registers per thread), so the
/// compiler can keep a fair number of deferred stores live at once.
const STORE_BUF_CAP: usize = 32;

impl StoreBuf {
    fn new() -> Self {
        StoreBuf {
            entries: Vec::new(),
        }
    }

    #[inline]
    fn overlaps(&self, addr: u32, width: u32) -> bool {
        self.entries
            .iter()
            .any(|e| e.addr < addr + width && addr < e.addr + e.width)
    }

    #[inline]
    fn exact(&self, addr: u32, width: u32) -> Option<u64> {
        self.entries
            .iter()
            .find(|e| e.addr == addr && e.width == width)
            .map(|e| e.bits)
    }
}

/// Everything a device thread can do during a step: memory accesses,
/// arithmetic accounting, and identity queries.
///
/// `H` selects the interpreter path (see [`Hooks`]); the default keeps
/// existing `Ctx<'_>` mentions meaning the fully-hooked context.
///
/// Cycle and access counters are accumulated *by value* in the context and
/// flushed to the per-SM / per-launch totals once per block iteration by
/// the scheduler (batched accounting): the access path touches hot locals
/// instead of bouncing through `&mut` indirections on every access. The
/// context itself is likewise built once per block iteration, not per
/// thread step: per-thread state (`thread`, `sbuf_idx`) is patched in
/// place, which keeps the ~20-field construction off the hot loop.
pub struct Ctx<'a, H: Hooks = FullHooks> {
    pub(crate) mem: &'a mut Memory,
    pub(crate) msys: &'a mut MemSystem,
    pub(crate) trace: Option<&'a mut Trace>,
    fault: Option<&'a mut FaultState>,
    sanitizer: Option<&'a mut SanitizerState>,
    kernel: &'a str,
    /// All threads' store buffers; the running thread's is `sbufs[sbuf_idx]`.
    sbufs: &'a mut [StoreBuf],
    sbuf_idx: usize,
    shared: &'a mut [u8],
    /// Cycles charged during the current step (flushed to the SM's total).
    cycles: u64,
    /// Access counters for the current step (flushed to the launch totals).
    counters: LaunchCounters,
    sm: u32,
    launch: u32,
    block: u32,
    phase: u32,
    thread: u32,
    num_threads: u32,
    thread_in_block: u32,
    visibility: StoreVisibility,
    native_64bit: bool,
    alu_cycles: u32,
    l1_cycles: u32,
    l2_cycles: u32,
    atomic_extra: u32,
    _hooks: std::marker::PhantomData<H>,
}

#[derive(Debug, Default, Clone, Copy)]
struct LaunchCounters {
    plain: u64,
    volatile_: u64,
    atomic: u64,
    coalesced: u64,
    steps: u64,
}

impl LaunchCounters {
    #[inline]
    fn merge(&mut self, delta: &LaunchCounters) {
        self.plain += delta.plain;
        self.volatile_ += delta.volatile_;
        self.atomic += delta.atomic;
        self.coalesced += delta.coalesced;
        self.steps += delta.steps;
    }
}

impl<'a, H: Hooks> Ctx<'a, H> {
    /// The thread's global id.
    #[inline]
    pub fn global_id(&self) -> u32 {
        self.thread
    }

    /// Total threads in this launch.
    #[inline]
    pub fn num_threads(&self) -> u32 {
        self.num_threads
    }

    /// This thread's block index.
    #[inline]
    pub fn block(&self) -> u32 {
        self.block
    }

    /// This thread's index within its block.
    #[inline]
    pub fn thread_in_block(&self) -> u32 {
        self.thread_in_block
    }

    /// Charges `units` of arithmetic work.
    #[inline]
    pub fn compute(&mut self, units: u32) {
        self.cycles += (units * self.alu_cycles) as u64;
    }

    /// The name of the kernel this thread is executing.
    #[inline]
    pub fn kernel_name(&self) -> &str {
        self.kernel
    }

    /// IR-driven mode dispatch: resolves `addr` to its named allocation and
    /// looks up the access modes the installed [`crate::ir::ModeTable`]
    /// prescribes for this kernel and that buffer. `None` when no table is
    /// installed, the address has no named allocation, or the table has no
    /// entry for the group. Host-side bookkeeping only — charges no
    /// simulated cycles.
    pub fn dispatch_modes(&self, addr: u32) -> Option<crate::ir::ModePair> {
        let table = self.mem.mode_table()?;
        let name = self.mem.allocation_name(addr)?;
        table.get(self.kernel, name)
    }

    /// `__threadfence()`: makes this thread's prior writes visible
    /// device-wide. Drains the compiler model's deferred stores and charges
    /// an L2 round trip. (A fence does NOT make racy code race-free — it
    /// only orders this thread's own accesses.)
    pub fn threadfence(&mut self) {
        self.drain_all();
        self.cycles += self.l2_cycles as u64;
    }

    #[inline]
    fn record(&mut self, space: Space, addr: u32, width: u32, mode: AccessMode, kind: AccessKind) {
        self.record_scoped(
            space,
            addr,
            width,
            mode,
            kind,
            Scope::Device,
            MemOrder::Relaxed,
        );
    }

    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn record_scoped(
        &mut self,
        space: Space,
        addr: u32,
        width: u32,
        mode: AccessMode,
        kind: AccessKind,
        scope: Scope,
        order: MemOrder,
    ) {
        if !H::HOOKED {
            // Fast path: no observation hooks are compiled in at all.
            return;
        }
        if self.sanitizer.is_some() {
            self.sanitize(space, addr, mode, kind);
        }
        if let Some(trace) = self.trace.as_deref_mut() {
            trace.record(AccessEvent {
                space,
                launch: self.launch,
                thread: self.thread,
                block: self.block,
                phase: self.phase,
                addr,
                width,
                mode,
                kind,
                scope,
                order,
            });
        }
    }

    /// Validates one access against the armed contract sanitizer; raises a
    /// typed [`SimError::ContractViolation`] on the first out-of-contract
    /// access. Runs on every access (unlike tracing, which is opt-in and
    /// orthogonal): the check is the enforcement, not an observation.
    fn sanitize(&mut self, space: Space, addr: u32, mode: AccessMode, kind: AccessKind) {
        let (kernel, thread, num_threads, block) =
            (self.kernel, self.thread, self.num_threads, self.block);
        if let Some(s) = self.sanitizer.as_deref_mut() {
            if let Err(e) = s.check(
                kernel,
                space,
                addr,
                mode,
                kind,
                thread,
                num_threads,
                block,
                self.mem,
            ) {
                error::raise(e);
            }
        }
    }

    /// Drains store-buffer entries overlapping `[addr, addr+width)`.
    fn drain_overlapping(&mut self, addr: u32, width: u32) {
        if self.sbufs[self.sbuf_idx].entries.is_empty() {
            return;
        }
        let mut i = 0;
        while i < self.sbufs[self.sbuf_idx].entries.len() {
            let e = self.sbufs[self.sbuf_idx].entries[i];
            if e.addr < addr + width && addr < e.addr + e.width {
                self.sbufs[self.sbuf_idx].entries.remove(i);
                self.commit_store(e);
            } else {
                i += 1;
            }
        }
    }

    /// Writes one deferred store to the arena, charging its cost.
    fn commit_store(&mut self, e: StoreEntry) {
        let (cost, _) = self.msys.access(
            self.sm as usize,
            e.addr,
            AccessMode::Plain,
            AccessKind::Store,
        );
        self.cycles += cost as u64;
        self.mem.write_bits(e.addr, e.width, e.bits);
    }

    /// Drains the entire store buffer (yield/done/barrier, per policy).
    fn drain_all(&mut self) {
        while let Some(e) = self.sbufs[self.sbuf_idx].entries.first().copied() {
            self.sbufs[self.sbuf_idx].entries.remove(0);
            self.commit_store(e);
        }
    }

    /// Raises a typed [`SimError::OutOfBounds`] when `[addr, addr+width)`
    /// leaves the allocated arena. Device pointers obtained through
    /// `DeviceBuffer::at` are host-checked already; this catches raw address
    /// arithmetic inside kernels.
    #[inline]
    fn check_oob(&mut self, addr: u32, width: u32, kind: AccessKind) {
        if addr as u64 + width as u64 > self.mem.footprint() as u64 {
            error::raise(SimError::OutOfBounds {
                kernel: self.kernel.to_string(),
                addr,
                access: kind,
            });
        }
    }

    /// Applies the armed fault plan (if any) to a load served at `level`.
    #[inline]
    fn maybe_flip(&mut self, bits: u64, width: u32, level: MemLevel) -> u64 {
        if !H::HOOKED {
            return bits;
        }
        match self.fault.as_deref_mut() {
            Some(f) => f.maybe_flip_bits(bits, width, level),
            None => bits,
        }
    }

    /// Executes one yield-point drain decision, letting the fault plan drop
    /// a scheduled drain or force an early one.
    fn yield_drain(&mut self, scheduled: bool) {
        let drain = if H::HOOKED {
            match self.fault.as_deref_mut() {
                Some(f) => f.perturb_flush(scheduled),
                None => scheduled,
            }
        } else {
            scheduled
        };
        if drain {
            self.drain_all();
        }
    }

    /// True when the compiler model is currently holding deferred stores.
    fn has_buffered_stores(&self) -> bool {
        !self.sbufs[self.sbuf_idx].entries.is_empty()
    }

    // ---------------------------------------------------------------- plain

    /// A plain (ordinary) load: L1-served, racy when shared.
    #[inline]
    pub fn load<T: DeviceValue>(&mut self, ptr: DevicePtr<T>) -> T {
        if T::WIDTH == 8 && !self.native_64bit {
            // Two 32-bit halves on non-64-bit hardware (word tearing).
            let lo = self.load_word(ptr.addr(), AccessMode::Plain) as u64;
            let hi = self.load_word(ptr.addr() + 4, AccessMode::Plain) as u64;
            return T::from_bits(lo | (hi << 32));
        }
        self.counters.plain += 1;
        self.check_oob(ptr.addr(), T::WIDTH, AccessKind::Load);
        self.record(
            Space::Global,
            ptr.addr(),
            T::WIDTH,
            AccessMode::Plain,
            AccessKind::Load,
        );
        // One emptiness check covers both store-buffer scans: empty is the
        // overwhelmingly common case (Immediate visibility never buffers).
        if !self.sbufs[self.sbuf_idx].entries.is_empty() {
            if let Some(bits) = self.sbufs[self.sbuf_idx].exact(ptr.addr(), T::WIDTH) {
                // Store-to-load forwarding: free, served from "registers".
                self.cycles += self.alu_cycles as u64;
                return T::from_bits(bits);
            }
            if self.sbufs[self.sbuf_idx].overlaps(ptr.addr(), T::WIDTH) {
                self.drain_overlapping(ptr.addr(), T::WIDTH);
            }
        }
        let (cost, level) = self.msys.access(
            self.sm as usize,
            ptr.addr(),
            AccessMode::Plain,
            AccessKind::Load,
        );
        self.cycles += cost as u64;
        let bits = self.mem.read(ptr).to_bits();
        T::from_bits(self.maybe_flip(bits, T::WIDTH, level))
    }

    /// A plain store: may be deferred by the compiler model.
    #[inline]
    pub fn store<T: DeviceValue>(&mut self, ptr: DevicePtr<T>, value: T) {
        if T::WIDTH == 8 && !self.native_64bit {
            // The hardware performs two independent 32-bit stores. The first
            // commits at once; the second follows the compiler model's drain
            // schedule — between them, other threads observe a torn value
            // (paper Fig. 1).
            let bits = value.to_bits();
            self.store_word_immediate(ptr.addr(), bits as u32, AccessMode::Plain);
            self.store_word(ptr.addr() + 4, (bits >> 32) as u32, AccessMode::Plain);
            return;
        }
        self.counters.plain += 1;
        self.check_oob(ptr.addr(), T::WIDTH, AccessKind::Store);
        self.record(
            Space::Global,
            ptr.addr(),
            T::WIDTH,
            AccessMode::Plain,
            AccessKind::Store,
        );
        match self.visibility {
            StoreVisibility::Immediate => {
                let (cost, _) = self.msys.access(
                    self.sm as usize,
                    ptr.addr(),
                    AccessMode::Plain,
                    AccessKind::Store,
                );
                self.cycles += cost as u64;
                self.mem.write(ptr, value);
            }
            StoreVisibility::DeferUntilYield | StoreVisibility::DeferUntilDone => {
                self.buffer_store(StoreEntry {
                    addr: ptr.addr(),
                    width: T::WIDTH,
                    bits: value.to_bits(),
                });
            }
            StoreVisibility::DeferBounded { eighths, .. } => {
                if deferred_address(ptr.addr(), eighths) {
                    self.buffer_store(StoreEntry {
                        addr: ptr.addr(),
                        width: T::WIDTH,
                        bits: value.to_bits(),
                    });
                } else {
                    let (cost, _) = self.msys.access(
                        self.sm as usize,
                        ptr.addr(),
                        AccessMode::Plain,
                        AccessKind::Store,
                    );
                    self.cycles += cost as u64;
                    self.mem.write(ptr, value);
                }
            }
        }
    }

    fn buffer_store(&mut self, e: StoreEntry) {
        if let Some(existing) = self.sbufs[self.sbuf_idx]
            .entries
            .iter_mut()
            .find(|x| x.addr == e.addr && x.width == e.width)
        {
            // The compiler coalesces repeated stores to one location.
            existing.bits = e.bits;
            self.counters.coalesced += 1;
            self.cycles += self.alu_cycles as u64;
            return;
        }
        if self.sbufs[self.sbuf_idx].overlaps(e.addr, e.width) {
            self.drain_overlapping(e.addr, e.width);
        }
        if self.sbufs[self.sbuf_idx].entries.len() >= STORE_BUF_CAP {
            let oldest = self.sbufs[self.sbuf_idx].entries.remove(0);
            self.commit_store(oldest);
        }
        self.sbufs[self.sbuf_idx].entries.push(e);
        self.cycles += self.alu_cycles as u64;
    }

    /// 32-bit half access used by split 64-bit plain/volatile operations.
    fn load_word(&mut self, addr: u32, mode: AccessMode) -> u32 {
        self.check_oob(addr, 4, AccessKind::Load);
        match mode {
            AccessMode::Plain => {
                self.counters.plain += 1;
                self.record(Space::Global, addr, 4, mode, AccessKind::Load);
                if let Some(bits) = self.sbufs[self.sbuf_idx].exact(addr, 4) {
                    self.cycles += self.alu_cycles as u64;
                    return bits as u32;
                }
                self.drain_overlapping(addr, 4);
                let (cost, level) =
                    self.msys
                        .access(self.sm as usize, addr, mode, AccessKind::Load);
                self.cycles += cost as u64;
                let bits = self.mem.read_bits(addr, 4);
                self.maybe_flip(bits, 4, level) as u32
            }
            _ => {
                self.counters.volatile_ += 1;
                self.record(Space::Global, addr, 4, mode, AccessKind::Load);
                self.drain_overlapping(addr, 4);
                let (cost, level) =
                    self.msys
                        .access(self.sm as usize, addr, mode, AccessKind::Load);
                self.cycles += cost as u64;
                let bits = self.mem.read_bits(addr, 4);
                self.maybe_flip(bits, 4, level) as u32
            }
        }
    }

    /// A 32-bit store that commits to the arena at once regardless of the
    /// compiler model (used for the first half of split 64-bit stores).
    fn store_word_immediate(&mut self, addr: u32, value: u32, mode: AccessMode) {
        self.check_oob(addr, 4, AccessKind::Store);
        match mode {
            AccessMode::Plain => self.counters.plain += 1,
            _ => self.counters.volatile_ += 1,
        }
        self.record(Space::Global, addr, 4, mode, AccessKind::Store);
        self.drain_overlapping(addr, 4);
        let (cost, _) = self
            .msys
            .access(self.sm as usize, addr, mode, AccessKind::Store);
        self.cycles += cost as u64;
        self.mem.write_bits(addr, 4, value as u64);
    }

    fn store_word(&mut self, addr: u32, value: u32, mode: AccessMode) {
        self.check_oob(addr, 4, AccessKind::Store);
        match mode {
            AccessMode::Plain => {
                self.counters.plain += 1;
                self.record(Space::Global, addr, 4, mode, AccessKind::Store);
                let buffered = match self.visibility {
                    StoreVisibility::Immediate => false,
                    StoreVisibility::DeferBounded { eighths, .. } => {
                        deferred_address(addr, eighths)
                    }
                    _ => true,
                };
                if buffered {
                    self.buffer_store(StoreEntry {
                        addr,
                        width: 4,
                        bits: value as u64,
                    });
                } else {
                    let (cost, _) =
                        self.msys
                            .access(self.sm as usize, addr, mode, AccessKind::Store);
                    self.cycles += cost as u64;
                    self.mem.write_bits(addr, 4, value as u64);
                }
            }
            _ => {
                self.counters.volatile_ += 1;
                self.record(Space::Global, addr, 4, mode, AccessKind::Store);
                self.drain_overlapping(addr, 4);
                let (cost, _) = self
                    .msys
                    .access(self.sm as usize, addr, mode, AccessKind::Store);
                self.cycles += cost as u64;
                self.mem.write_bits(addr, 4, value as u64);
            }
        }
    }

    // ------------------------------------------------------------- volatile

    /// A `volatile` load: bypasses L1, always reads memory, still racy.
    #[inline]
    pub fn load_volatile<T: DeviceValue>(&mut self, ptr: DevicePtr<T>) -> T {
        if T::WIDTH == 8 && !self.native_64bit {
            // volatile does NOT prevent word tearing (paper §II-A).
            let lo = self.load_word(ptr.addr(), AccessMode::Volatile) as u64;
            let hi = self.load_word(ptr.addr() + 4, AccessMode::Volatile) as u64;
            return T::from_bits(lo | (hi << 32));
        }
        self.counters.volatile_ += 1;
        self.check_oob(ptr.addr(), T::WIDTH, AccessKind::Load);
        self.record(
            Space::Global,
            ptr.addr(),
            T::WIDTH,
            AccessMode::Volatile,
            AccessKind::Load,
        );
        self.drain_overlapping(ptr.addr(), T::WIDTH);
        let (cost, level) = self.msys.access(
            self.sm as usize,
            ptr.addr(),
            AccessMode::Volatile,
            AccessKind::Load,
        );
        self.cycles += cost as u64;
        let bits = self.mem.read(ptr).to_bits();
        T::from_bits(self.maybe_flip(bits, T::WIDTH, level))
    }

    /// A `volatile` store: immediately visible, still racy.
    #[inline]
    pub fn store_volatile<T: DeviceValue>(&mut self, ptr: DevicePtr<T>, value: T) {
        if T::WIDTH == 8 && !self.native_64bit {
            let bits = value.to_bits();
            self.store_word(ptr.addr(), bits as u32, AccessMode::Volatile);
            self.store_word(ptr.addr() + 4, (bits >> 32) as u32, AccessMode::Volatile);
            return;
        }
        self.counters.volatile_ += 1;
        self.check_oob(ptr.addr(), T::WIDTH, AccessKind::Store);
        self.record(
            Space::Global,
            ptr.addr(),
            T::WIDTH,
            AccessMode::Volatile,
            AccessKind::Store,
        );
        self.drain_overlapping(ptr.addr(), T::WIDTH);
        let (cost, _) = self.msys.access(
            self.sm as usize,
            ptr.addr(),
            AccessMode::Volatile,
            AccessKind::Store,
        );
        self.cycles += cost as u64;
        self.mem.write(ptr, value);
    }

    // --------------------------------------------------------------- atomic

    fn atomic_pre(&mut self, addr: u32, width: u32, kind: AccessKind) {
        self.atomic_pre_explicit(addr, width, kind, MemOrder::Relaxed, Scope::Device);
    }

    fn atomic_pre_explicit(
        &mut self,
        addr: u32,
        width: u32,
        kind: AccessKind,
        order: MemOrder,
        scope: Scope,
    ) {
        self.counters.atomic += 1;
        // Atomics read and write through the (ECC-protected) coherence
        // point, so the fault model never flips them — only bounds-checks.
        self.check_oob(addr, width, kind);
        self.record_scoped(
            Space::Global,
            addr,
            width,
            AccessMode::Atomic,
            kind,
            scope,
            order,
        );
        self.drain_overlapping(addr, width);
        let base = match scope {
            // Block scope: coherent within one SM, serviced by its L1.
            Scope::Block => {
                let extra = if kind == AccessKind::Rmw {
                    self.atomic_extra
                } else {
                    0
                };
                (self.l1_cycles + extra) as u64
            }
            // Device scope: the L2 coherence point (the converted ECL codes).
            Scope::Device => {
                let (cost, _) = self
                    .msys
                    .access(self.sm as usize, addr, AccessMode::Atomic, kind);
                cost as u64
            }
            // System scope: L2 plus the system-coherence round trip.
            Scope::System => {
                let (cost, _) = self
                    .msys
                    .access(self.sm as usize, addr, AccessMode::Atomic, kind);
                (cost + 2 * self.l2_cycles) as u64
            }
        };
        // Ordering fences: each fence costs an L2 round trip.
        let fences = (order.fence_count() * self.l2_cycles) as u64;
        self.cycles += base + fences;
    }

    /// A relaxed atomic load (`cuda::atomic<T>::load(memory_order_relaxed)`,
    /// the paper's Fig. 2 `atomicRead`). Never tears, even for 64-bit values.
    #[inline]
    pub fn atomic_load<T: DeviceValue>(&mut self, ptr: DevicePtr<T>) -> T {
        self.atomic_pre(ptr.addr(), T::WIDTH, AccessKind::Load);
        self.mem.read(ptr)
    }

    /// A relaxed atomic store (the paper's Fig. 2 `atomicWrite`).
    #[inline]
    pub fn atomic_store<T: DeviceValue>(&mut self, ptr: DevicePtr<T>, value: T) {
        self.atomic_pre(ptr.addr(), T::WIDTH, AccessKind::Store);
        self.mem.write(ptr, value);
    }

    /// Generic relaxed atomic read-modify-write; returns the old value.
    #[inline]
    pub fn atomic_rmw<T: DeviceValue>(&mut self, ptr: DevicePtr<T>, f: impl FnOnce(T) -> T) -> T {
        self.atomic_pre(ptr.addr(), T::WIDTH, AccessKind::Rmw);
        let old = self.mem.read(ptr);
        self.mem.write(ptr, f(old));
        old
    }

    /// An atomic load with an explicit memory order and thread scope, like
    /// `cuda::atomic_ref<T, Scope>::load(order)`. The converted ECL codes
    /// use `(MemOrder::Relaxed, Scope::Device)`, which [`Ctx::atomic_load`]
    /// defaults to; stronger orders pay fence costs and `Scope::System`
    /// pays the system-coherence round trip (paper §II-A: "the defaults can
    /// lead to poor performance").
    #[inline]
    pub fn atomic_load_explicit<T: DeviceValue>(
        &mut self,
        ptr: DevicePtr<T>,
        order: MemOrder,
        scope: Scope,
    ) -> T {
        self.atomic_pre_explicit(ptr.addr(), T::WIDTH, AccessKind::Load, order, scope);
        self.mem.read(ptr)
    }

    /// An atomic store with an explicit memory order and thread scope.
    #[inline]
    pub fn atomic_store_explicit<T: DeviceValue>(
        &mut self,
        ptr: DevicePtr<T>,
        value: T,
        order: MemOrder,
        scope: Scope,
    ) {
        self.atomic_pre_explicit(ptr.addr(), T::WIDTH, AccessKind::Store, order, scope);
        self.mem.write(ptr, value);
    }

    /// An atomic read-modify-write with an explicit memory order and thread
    /// scope; returns the old value.
    #[inline]
    pub fn atomic_rmw_explicit<T: DeviceValue>(
        &mut self,
        ptr: DevicePtr<T>,
        order: MemOrder,
        scope: Scope,
        f: impl FnOnce(T) -> T,
    ) -> T {
        self.atomic_pre_explicit(ptr.addr(), T::WIDTH, AccessKind::Rmw, order, scope);
        let old = self.mem.read(ptr);
        self.mem.write(ptr, f(old));
        old
    }

    /// `atomicAdd` on a `u32`; returns the old value.
    #[inline]
    pub fn atomic_add_u32(&mut self, ptr: DevicePtr<u32>, v: u32) -> u32 {
        self.atomic_rmw(ptr, |old| old.wrapping_add(v))
    }

    /// `atomicMin` on a `u32`; returns the old value.
    #[inline]
    pub fn atomic_min_u32(&mut self, ptr: DevicePtr<u32>, v: u32) -> u32 {
        self.atomic_rmw(ptr, |old| old.min(v))
    }

    /// `atomicMax` on a `u32`; returns the old value.
    #[inline]
    pub fn atomic_max_u32(&mut self, ptr: DevicePtr<u32>, v: u32) -> u32 {
        self.atomic_rmw(ptr, |old| old.max(v))
    }

    /// `atomicMin` on a `u64` (`unsigned long long`); returns the old value.
    #[inline]
    pub fn atomic_min_u64(&mut self, ptr: DevicePtr<u64>, v: u64) -> u64 {
        self.atomic_rmw(ptr, |old| old.min(v))
    }

    /// `atomicAdd` on a `u64`; returns the old value.
    #[inline]
    pub fn atomic_add_u64(&mut self, ptr: DevicePtr<u64>, v: u64) -> u64 {
        self.atomic_rmw(ptr, |old| old.wrapping_add(v))
    }

    /// `atomicAnd` on a `u32`; returns the old value.
    #[inline]
    pub fn atomic_and_u32(&mut self, ptr: DevicePtr<u32>, v: u32) -> u32 {
        self.atomic_rmw(ptr, |old| old & v)
    }

    /// `atomicOr` on a `u32`; returns the old value.
    #[inline]
    pub fn atomic_or_u32(&mut self, ptr: DevicePtr<u32>, v: u32) -> u32 {
        self.atomic_rmw(ptr, |old| old | v)
    }

    /// `atomicCAS` on a `u32`; returns the old value (compare with `expected`
    /// to learn whether the swap happened).
    #[inline]
    pub fn atomic_cas_u32(&mut self, ptr: DevicePtr<u32>, expected: u32, desired: u32) -> u32 {
        self.atomic_rmw(ptr, |old| if old == expected { desired } else { old })
    }

    /// `atomicCAS` on a `u64`; returns the old value.
    #[inline]
    pub fn atomic_cas_u64(&mut self, ptr: DevicePtr<u64>, expected: u64, desired: u64) -> u64 {
        self.atomic_rmw(ptr, |old| if old == expected { desired } else { old })
    }

    /// `atomicExch` on a `u32`; returns the old value.
    #[inline]
    pub fn atomic_exch_u32(&mut self, ptr: DevicePtr<u32>, v: u32) -> u32 {
        self.atomic_rmw(ptr, |_| v)
    }

    // --------------------------------------------------------------- shared

    /// Reads a value from per-block shared memory at a byte offset.
    ///
    /// # Panics
    ///
    /// Panics if the access is outside the launch's `shared_bytes`.
    #[inline]
    pub fn shared_read<T: DeviceValue>(&mut self, offset: u32) -> T {
        self.record(
            Space::Shared,
            offset,
            T::WIDTH,
            AccessMode::Plain,
            AccessKind::Load,
        );
        self.cycles += self.l1_cycles as u64;
        T::read_from(self.shared, offset)
    }

    /// Writes a value to per-block shared memory at a byte offset.
    ///
    /// # Panics
    ///
    /// Panics if the access is outside the launch's `shared_bytes`.
    #[inline]
    pub fn shared_write<T: DeviceValue>(&mut self, offset: u32, value: T) {
        self.record(
            Space::Shared,
            offset,
            T::WIDTH,
            AccessMode::Plain,
            AccessKind::Store,
        );
        self.cycles += self.l1_cycles as u64;
        value.write_to(self.shared, offset);
    }
}

/// Thread scheduling status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadStatus {
    Active,
    AtBarrier,
    Done,
}

/// Runs one kernel to completion; returns its stats, or a typed error when
/// the watchdog fires, the fault budget runs out, the scheduler livelocks,
/// or a block diverges at a barrier.
///
/// This is crate-internal: user code launches kernels through
/// [`crate::Gpu::launch`] / [`crate::Gpu::try_launch`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_kernel<H: Hooks, K: Kernel<H>>(
    cfg: &GpuConfig,
    mem: &mut Memory,
    msys: &mut MemSystem,
    mut trace: Option<&mut Trace>,
    launch_id: u32,
    seed: u64,
    watchdog: Option<u64>,
    deadline: Option<std::time::Instant>,
    mut fault: Option<&mut FaultState>,
    mut sanitizer: Option<&mut SanitizerState>,
    launch: LaunchConfig,
    kernel: &K,
) -> Result<KernelStats, SimError> {
    let (grid_blocks, block_threads) = effective_geometry(cfg, &launch);
    let num_threads = grid_blocks * block_threads;

    if let Some(t) = trace.as_deref_mut() {
        t.name_launch(launch_id, kernel.name());
    }
    if let Some(s) = sanitizer.as_deref_mut() {
        s.begin_launch();
    }

    // Per-thread coroutine states and store buffers.
    let mut states: Vec<K::State> = (0..num_threads)
        .map(|tid| {
            kernel.init(ThreadInfo {
                global_id: tid,
                num_threads,
                block: tid / block_threads,
                thread_in_block: tid % block_threads,
            })
        })
        .collect();
    let mut statuses = vec![ThreadStatus::Active; num_threads as usize];
    let mut yields = vec![0u32; num_threads as usize];
    let mut sbufs: Vec<StoreBuf> = (0..num_threads).map(|_| StoreBuf::new()).collect();
    let mut shared: Vec<Vec<u8>> = (0..grid_blocks)
        .map(|_| vec![0u8; launch.shared_bytes as usize])
        .collect();
    let mut phases = vec![0u32; grid_blocks as usize];
    let mut sm_cycles = vec![0u64; cfg.num_sms as usize];
    let mut counters = LaunchCounters::default();

    let sm_of = |block: u32| -> u32 { block % cfg.num_sms };

    msys.reset_stats();

    // More blocks than the device can host run in waves, as on real
    // hardware where excess blocks queue until SMs free up. Grid-stride
    // kernels (non-exact geometry) are clamped to one wave above, so
    // cross-block polling can never deadlock on an unscheduled block.
    let wave_blocks = (cfg.max_resident_threads() / block_threads).max(1);
    let mut wave_start = 0u32;
    while wave_start < grid_blocks {
        let wave_end = (wave_start + wave_blocks).min(grid_blocks);
        let mut block_order: Vec<u32> = (wave_start..wave_end).collect();
        shuffle(
            &mut block_order,
            seed ^ ((launch_id as u64) << 32) ^ wave_start as u64,
        );
        let wave_len = block_order.len();
        run_wave(
            cfg,
            kernel,
            &block_order,
            block_threads,
            seed,
            launch_id,
            num_threads,
            mem,
            msys,
            &mut trace,
            &mut states,
            &mut statuses,
            &mut yields,
            &mut sbufs,
            &mut shared,
            &mut phases,
            &mut sm_cycles,
            &mut counters,
            launch,
            &sm_of,
            wave_len,
            watchdog,
            deadline,
            &mut fault,
            &mut sanitizer,
        )?;
        wave_start = wave_end;
    }

    let busiest = sm_cycles.iter().copied().max().unwrap_or(0);
    Ok(KernelStats {
        name: kernel.name().to_string(),
        cycles: busiest + cfg.launch_overhead_cycles,
        l1: msys.l1_stats(),
        l2: msys.l2_stats(),
        dram_accesses: msys.dram_accesses(),
        plain_accesses: counters.plain,
        volatile_accesses: counters.volatile_,
        atomic_accesses: counters.atomic,
        coalesced_stores: counters.coalesced,
        steps: counters.steps,
        threads: num_threads as u64,
    })
}

/// Runs one resident wave of blocks to completion.
#[allow(clippy::too_many_arguments)]
fn run_wave<H: Hooks, K: Kernel<H>>(
    cfg: &GpuConfig,
    kernel: &K,
    block_order: &[u32],
    block_threads: u32,
    seed: u64,
    launch_id: u32,
    num_threads: u32,
    mem: &mut Memory,
    msys: &mut MemSystem,
    trace: &mut Option<&mut Trace>,
    states: &mut [K::State],
    statuses: &mut [ThreadStatus],
    yields: &mut [u32],
    sbufs: &mut [StoreBuf],
    shared: &mut [Vec<u8>],
    phases: &mut [u32],
    sm_cycles: &mut [u64],
    counters: &mut LaunchCounters,
    launch: LaunchConfig,
    sm_of: &dyn Fn(u32) -> u32,
    wave_len: usize,
    watchdog: Option<u64>,
    deadline: Option<std::time::Instant>,
    fault: &mut Option<&mut FaultState>,
    sanitizer: &mut Option<&mut SanitizerState>,
) -> Result<(), SimError> {
    // Per-block Active / AtBarrier counts, maintained incrementally so the
    // scheduler can skip fully-finished blocks and release barriers in O(1)
    // instead of rescanning every thread's status each round. Indexed by
    // global block id; only this wave's entries are used. Pure bookkeeping:
    // the order and identity of executed steps is exactly as before (the
    // skipped iterations were no-ops).
    let num_blocks = (num_threads / block_threads) as usize;
    let mut active_cnt = vec![0u32; num_blocks];
    let mut barrier_cnt = vec![0u32; num_blocks];
    for &b in block_order {
        let first = b * block_threads;
        for t in first..first + block_threads {
            match statuses[t as usize] {
                ThreadStatus::Active => active_cnt[b as usize] += 1,
                ThreadStatus::AtBarrier => barrier_cnt[b as usize] += 1,
                ThreadStatus::Done => {}
            }
        }
    }
    let mut alive: u32 = block_order.iter().map(|&b| active_cnt[b as usize]).sum();
    let mut round = 0u64;
    const MAX_ROUNDS: u64 = 4_000_000;
    while alive > 0 {
        round += 1;
        if round > MAX_ROUNDS {
            return Err(SimError::Livelock {
                kernel: kernel.name().to_string(),
                rounds: MAX_ROUNDS,
            });
        }
        // Rotate the starting block each round so interleaving varies with
        // the seed but stays cheap to compute. An armed fault plan may add
        // jitter on top, widening the interleavings one run explores.
        let mut rot = ((round.wrapping_mul(0x9e3779b97f4a7c15) ^ seed) % wave_len as u64) as usize;
        if let Some(f) = fault.as_deref_mut() {
            rot = (rot + f.sched_jitter(wave_len as u64) as usize) % wave_len;
        }
        for bi in 0..wave_len {
            let block = block_order[(bi + rot) % wave_len];
            let b = block as usize;
            if active_cnt[b] == 0 && barrier_cnt[b] == 0 {
                // Every thread in the block is Done; nothing to step and no
                // barrier to release.
                continue;
            }
            let sm = sm_of(block);
            let first = block * block_threads;
            if active_cnt[b] > 0 {
                // The context is built once per block iteration; only the
                // per-thread fields are patched inside the loop. All threads
                // of a block run on the same SM, so cycles and counters can
                // be flushed once after the loop with an identical sum.
                let mut ctx = Ctx {
                    mem: &mut *mem,
                    msys: &mut *msys,
                    trace: trace.as_deref_mut(),
                    fault: fault.as_deref_mut(),
                    sanitizer: sanitizer.as_deref_mut(),
                    kernel: kernel.name(),
                    sbufs: &mut *sbufs,
                    sbuf_idx: 0,
                    shared: &mut shared[block as usize],
                    cycles: 0,
                    counters: LaunchCounters::default(),
                    sm,
                    launch: launch_id,
                    block,
                    phase: phases[block as usize],
                    thread: 0,
                    num_threads,
                    thread_in_block: 0,
                    visibility: launch.store_visibility,
                    native_64bit: cfg.native_64bit,
                    alu_cycles: cfg.alu_cycles,
                    l1_cycles: cfg.l1_cycles,
                    l2_cycles: cfg.l2_cycles,
                    atomic_extra: cfg.atomic_extra_cycles,
                    _hooks: std::marker::PhantomData,
                };
                for t in first..first + block_threads {
                    if statuses[t as usize] != ThreadStatus::Active {
                        continue;
                    }
                    ctx.counters.steps += 1;
                    ctx.thread = t;
                    ctx.thread_in_block = t - first;
                    ctx.sbuf_idx = t as usize;
                    let step = kernel.step(&mut states[t as usize], &mut ctx);
                    match step {
                        Step::Yield => {
                            let scheduled = match launch.store_visibility {
                                StoreVisibility::DeferUntilYield => true,
                                StoreVisibility::DeferBounded { every, .. } => {
                                    yields[t as usize] += 1;
                                    yields[t as usize].is_multiple_of(every.max(1))
                                }
                                _ => false,
                            };
                            // Fault plans only perturb drains that could matter:
                            // a scheduled one, or an early one with stores held.
                            if scheduled || ctx.has_buffered_stores() {
                                ctx.yield_drain(scheduled);
                            }
                        }
                        Step::Barrier => {
                            // __syncthreads makes prior writes visible block-wide
                            // (and, in our flat arena, device-wide).
                            ctx.drain_all();
                            statuses[t as usize] = ThreadStatus::AtBarrier;
                            active_cnt[b] -= 1;
                            barrier_cnt[b] += 1;
                        }
                        Step::Done => {
                            ctx.drain_all();
                            statuses[t as usize] = ThreadStatus::Done;
                            active_cnt[b] -= 1;
                            alive -= 1;
                        }
                    }
                }
                // Batched accounting: one flush per block iteration instead
                // of one indirect add per access.
                sm_cycles[sm as usize] += ctx.cycles;
                counters.merge(&ctx.counters);
            }
            // Barrier release: when no thread in the block is Active, all
            // waiting threads resume in the next phase.
            if active_cnt[b] > 0 || barrier_cnt[b] == 0 {
                continue;
            }
            // CUDA requires all-or-none barrier participation: a thread
            // exiting while its siblings wait at a barrier is undefined
            // behavior on real hardware, so we fail loudly.
            if barrier_cnt[b] < block_threads {
                return Err(SimError::BarrierDivergence {
                    kernel: kernel.name().to_string(),
                    block,
                });
            }
            for t in first..first + block_threads {
                if statuses[t as usize] == ThreadStatus::AtBarrier {
                    statuses[t as usize] = ThreadStatus::Active;
                }
            }
            active_cnt[b] = barrier_cnt[b];
            barrier_cnt[b] = 0;
            phases[block as usize] += 1;
        }
        // The watchdog and the fault budget are checked once per scheduler
        // round — the granularity at which the simulator can interrupt a
        // launch, like a driver-level timeout on real hardware.
        if let Some(budget) = watchdog {
            let busiest = sm_cycles.iter().copied().max().unwrap_or(0);
            if busiest > budget {
                return Err(SimError::WatchdogTimeout {
                    kernel: kernel.name().to_string(),
                    budget_cycles: budget,
                    elapsed_cycles: busiest,
                });
            }
        }
        if let Some(f) = fault.as_deref() {
            if f.budget_exhausted() {
                return Err(SimError::FaultBudgetExhausted {
                    kernel: kernel.name().to_string(),
                    budget: f.budget(),
                });
            }
        }
        // The wall-clock deadline is real time, not simulated time, so it
        // can only influence the error path: runs that finish in time are
        // bit-identical whether or not a deadline is armed. A round covers
        // hundreds of thread steps, so one `Instant::now` here is noise —
        // and only paid when a deadline is actually armed.
        if let Some(d) = deadline {
            if alive > 0 && std::time::Instant::now() >= d {
                return Err(SimError::DeadlineExceeded {
                    kernel: kernel.name().to_string(),
                });
            }
        }
    }
    Ok(())
}

fn effective_geometry(cfg: &GpuConfig, launch: &LaunchConfig) -> (u32, u32) {
    assert!(launch.grid_blocks >= 1 && launch.block_threads >= 1);
    let capacity = cfg.max_resident_threads();
    if launch.exact_geometry {
        // Exact grids may exceed residency; excess blocks run in waves.
        return (launch.grid_blocks, launch.block_threads);
    }
    let max_blocks = (capacity / launch.block_threads).max(1);
    (launch.grid_blocks.min(max_blocks), launch.block_threads)
}

/// Deterministically selects whether a store address belongs to the
/// compiler-deferred fraction (`eighths / 8` of all addresses).
#[inline]
fn deferred_address(addr: u32, eighths: u8) -> bool {
    let mut h = addr.wrapping_mul(0x9e37_79b9);
    h ^= h >> 15;
    (h & 7) < eighths as u32
}

/// Fisher–Yates with a SplitMix64 stream (no external RNG needed here).
fn shuffle(values: &mut [u32], mut seed: u64) {
    let mut next = || {
        seed = seed.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    };
    for i in (1..values.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        values.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::Gpu;

    #[test]
    fn for_each_covers_all_items() {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let buf = gpu.alloc::<u32>(5000);
        gpu.launch(
            LaunchConfig::for_items(5000),
            ForEach::new("mark", 5000, move |ctx, i| {
                ctx.store(buf.at(i as usize), i + 1);
            }),
        );
        let host = gpu.download(&buf);
        for (i, &v) in host.iter().enumerate() {
            assert_eq!(v, i as u32 + 1);
        }
    }

    #[test]
    fn launch_config_for_items_clamps() {
        let lc = LaunchConfig::for_items(10);
        assert_eq!(lc.grid_blocks, 1);
        let lc = LaunchConfig::for_items(1_000_000);
        assert_eq!(lc.grid_blocks, 128);
    }

    #[test]
    fn geometry_clamped_to_capacity() {
        let cfg = GpuConfig::test_tiny(); // 4 SMs * 256 threads = 1024
        let launch = LaunchConfig::for_items(1_000_000);
        let (blocks, threads) = effective_geometry(&cfg, &launch);
        assert!(blocks * threads <= cfg.max_resident_threads());
    }

    #[test]
    fn exact_geometry_overflow_runs_in_waves() {
        // 64 blocks x 256 threads on a 1024-thread device: 16 waves.
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let buf = gpu.alloc::<u32>(64 * 256);
        struct BlockWriter {
            buf: crate::mem::DeviceBuffer<u32>,
        }
        impl Kernel for BlockWriter {
            type State = ();
            fn name(&self) -> &str {
                "waves"
            }
            fn init(&self, _: ThreadInfo) {}
            fn step(&self, _: &mut (), ctx: &mut Ctx<'_>) -> Step {
                let i = ctx.global_id() as usize;
                ctx.store(self.buf.at(i), ctx.block() + 1);
                Step::Done
            }
        }
        gpu.launch(
            LaunchConfig {
                grid_blocks: 64,
                block_threads: 256,
                store_visibility: StoreVisibility::Immediate,
                shared_bytes: 0,
                exact_geometry: true,
            },
            BlockWriter { buf },
        );
        let host = gpu.download(&buf);
        for b in 0..64u32 {
            assert_eq!(host[(b * 256) as usize], b + 1);
        }
    }

    #[test]
    fn atomic_add_counts_every_thread() {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let counter = gpu.alloc::<u32>(1);
        gpu.launch(
            LaunchConfig::for_items(1000),
            ForEach::new("count", 1000, move |ctx, _| {
                ctx.atomic_add_u32(counter.at(0), 1);
            }),
        );
        assert_eq!(gpu.download(&counter)[0], 1000);
    }

    #[test]
    fn deferred_stores_drain_by_done() {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let buf = gpu.alloc::<u32>(100);
        gpu.launch(
            LaunchConfig::for_items(100).with_visibility(StoreVisibility::DeferUntilDone),
            ForEach::new("defer", 100, move |ctx, i| {
                ctx.store(buf.at(i as usize), 7);
            }),
        );
        assert!(gpu.download(&buf).iter().all(|&v| v == 7));
    }

    #[test]
    fn coalesced_stores_counted() {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let buf = gpu.alloc::<u32>(1);
        gpu.launch(
            LaunchConfig {
                grid_blocks: 1,
                block_threads: 1,
                store_visibility: StoreVisibility::DeferUntilDone,
                shared_bytes: 0,
                exact_geometry: true,
            },
            ForEach::new("overwrite", 16, move |ctx, _| {
                ctx.store(buf.at(0), 1);
            })
            .with_chunk(16),
        );
        let stats = gpu.last_stats().unwrap();
        assert_eq!(stats.coalesced_stores, 15);
        assert_eq!(gpu.download(&buf)[0], 1);
    }

    #[test]
    fn store_to_load_forwarding_sees_own_writes() {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let buf = gpu.alloc::<u32>(2);
        gpu.launch(
            LaunchConfig {
                grid_blocks: 1,
                block_threads: 1,
                store_visibility: StoreVisibility::DeferUntilDone,
                shared_bytes: 0,
                exact_geometry: true,
            },
            ForEach::new("fwd", 1, move |ctx, _| {
                ctx.store(buf.at(0), 41);
                let v = ctx.load(buf.at(0));
                ctx.store(buf.at(1), v + 1);
            }),
        );
        assert_eq!(gpu.download(&buf), vec![41, 42]);
    }

    #[test]
    fn memory_order_and_scope_costs() {
        use crate::access::{MemOrder, Scope};
        let cost_of = |order: MemOrder, scope: Scope| {
            let mut gpu = Gpu::new(GpuConfig::test_tiny());
            let buf = gpu.alloc::<u32>(64);
            gpu.launch(
                LaunchConfig {
                    grid_blocks: 1,
                    block_threads: 1,
                    store_visibility: StoreVisibility::Immediate,
                    shared_bytes: 0,
                    exact_geometry: true,
                },
                ForEach::new("x", 64, move |ctx, i| {
                    let _ = ctx.atomic_load_explicit(buf.at(i as usize), order, scope);
                })
                .with_chunk(64),
            );
            gpu.elapsed_cycles()
        };
        let relaxed = cost_of(MemOrder::Relaxed, Scope::Device);
        let seq_cst = cost_of(MemOrder::SeqCst, Scope::Device);
        let block = cost_of(MemOrder::Relaxed, Scope::Block);
        let system = cost_of(MemOrder::Relaxed, Scope::System);
        // The paper's §II-A guidance: relaxed is the cheapest order, the
        // seq_cst default is slower; block scope beats device beats system.
        assert!(seq_cst > relaxed, "seq_cst {seq_cst} vs relaxed {relaxed}");
        assert!(block < relaxed, "block {block} vs device {relaxed}");
        assert!(system > relaxed, "system {system} vs device {relaxed}");
    }

    #[test]
    fn explicit_atomics_are_functional() {
        use crate::access::{MemOrder, Scope};
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let buf = gpu.alloc::<u64>(1);
        gpu.launch(
            LaunchConfig::for_items(100),
            ForEach::new("inc", 100, move |ctx, _| {
                ctx.atomic_rmw_explicit(buf.at(0), MemOrder::SeqCst, Scope::System, |v| v + 2);
            }),
        );
        assert_eq!(gpu.download(&buf)[0], 200);
        gpu.launch(
            LaunchConfig::for_items(1),
            ForEach::new("set", 1, move |ctx, _| {
                ctx.atomic_store_explicit(buf.at(0), 7u64, MemOrder::Release, Scope::Device);
            }),
        );
        assert_eq!(gpu.download(&buf)[0], 7);
    }

    #[test]
    fn barrier_orders_block_phases() {
        // Producer/consumer across a barrier within one block.
        struct BarrierKernel {
            buf: crate::mem::DeviceBuffer<u32>,
            out: crate::mem::DeviceBuffer<u32>,
        }
        impl Kernel for BarrierKernel {
            type State = (u32, u8);
            fn name(&self) -> &str {
                "barrier"
            }
            fn init(&self, info: ThreadInfo) -> Self::State {
                (info.thread_in_block, 0)
            }
            fn step(&self, state: &mut Self::State, ctx: &mut Ctx<'_>) -> Step {
                let (tid, stage) = *state;
                if stage == 0 {
                    ctx.store(self.buf.at(tid as usize), tid + 100);
                    state.1 = 1;
                    Step::Barrier
                } else {
                    // Read a sibling's value; the barrier guarantees it.
                    let peer = (tid + 1) % 32;
                    let v = ctx.load(self.buf.at(peer as usize));
                    ctx.store(self.out.at(tid as usize), v);
                    Step::Done
                }
            }
        }
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let buf = gpu.alloc::<u32>(32);
        let out = gpu.alloc::<u32>(32);
        gpu.launch(
            LaunchConfig {
                grid_blocks: 1,
                block_threads: 32,
                store_visibility: StoreVisibility::DeferUntilDone,
                shared_bytes: 0,
                exact_geometry: true,
            },
            BarrierKernel { buf, out },
        );
        let host = gpu.download(&out);
        for t in 0..32u32 {
            assert_eq!(host[t as usize], (t + 1) % 32 + 100);
        }
    }

    #[test]
    fn shared_memory_is_per_block() {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let out = gpu.alloc::<u32>(4);
        struct SharedKernel {
            out: crate::mem::DeviceBuffer<u32>,
        }
        impl Kernel for SharedKernel {
            type State = u8;
            fn name(&self) -> &str {
                "shared"
            }
            fn init(&self, _: ThreadInfo) -> u8 {
                0
            }
            fn step(&self, stage: &mut u8, ctx: &mut Ctx<'_>) -> Step {
                if *stage == 0 {
                    // Each block writes its own id into shared offset 0.
                    ctx.shared_write::<u32>(0, ctx.block() + 10);
                    *stage = 1;
                    Step::Barrier
                } else {
                    let v: u32 = ctx.shared_read(0);
                    let b = ctx.block();
                    ctx.store(self.out.at(b as usize), v);
                    Step::Done
                }
            }
        }
        gpu.launch(
            LaunchConfig {
                grid_blocks: 4,
                block_threads: 1,
                store_visibility: StoreVisibility::Immediate,
                shared_bytes: 64,
                exact_geometry: true,
            },
            SharedKernel { out },
        );
        assert_eq!(gpu.download(&out), vec![10, 11, 12, 13]);
    }

    #[test]
    fn word_tearing_on_32bit_hardware() {
        // Paper Fig. 1: T1 stores 0 over -1 with a plain 64-bit access on a
        // device without native 64-bit stores; T2 observes a chimera.
        let mut cfg = GpuConfig::test_tiny();
        cfg.native_64bit = false;
        let mut gpu = Gpu::new(cfg);
        let val = gpu.alloc::<u64>(1);
        let seen = gpu.alloc::<u64>(4);
        gpu.upload(&val, &[u64::MAX]);

        struct Fig1 {
            val: crate::mem::DeviceBuffer<u64>,
            seen: crate::mem::DeviceBuffer<u64>,
        }
        impl Kernel for Fig1 {
            type State = (u32, u8);
            fn name(&self) -> &str {
                "fig1"
            }
            fn init(&self, info: ThreadInfo) -> Self::State {
                (info.global_id, 0)
            }
            fn step(&self, state: &mut Self::State, ctx: &mut Ctx<'_>) -> Step {
                let (tid, stage) = *state;
                match (tid, stage) {
                    (0, 0) => {
                        // T1: plain 64-bit store; the low half commits now,
                        // the high half drains when the thread finishes.
                        ctx.store(self.val.at(0), 0u64);
                        state.1 = 1;
                        Step::Yield
                    }
                    (0, _) => Step::Done,
                    (t, _) => {
                        // T2-style readers sample while T1's second machine
                        // store is still in flight.
                        let v = ctx.load(self.val.at(0));
                        ctx.store_volatile(self.seen.at(t as usize), v);
                        Step::Done
                    }
                }
            }
        }
        gpu.launch(
            LaunchConfig {
                grid_blocks: 1,
                block_threads: 4,
                store_visibility: StoreVisibility::DeferUntilDone,
                shared_bytes: 0,
                exact_geometry: true,
            },
            Fig1 { val, seen },
        );
        let seen = gpu.download(&seen);
        // At least one reader saw a value that is neither -1 nor 0: a
        // chimera with half old and half new bits.
        let chimera = seen[1..].iter().any(|&v| v != u64::MAX && v != 0);
        assert!(chimera, "expected a torn value, saw {seen:x?}");
        assert_eq!(gpu.download(&val)[0], 0, "final value must settle to 0");
    }
}
