//! GPU configuration presets (the paper's Table I).
//!
//! Cycle costs are *throughput* (occupancy) costs per access at each service
//! point, not raw latencies: with enough resident warps a GPU hides latency,
//! so what remains visible in end-to-end runtime is how many cycles of
//! bandwidth each access consumes at the level that serves it. The relative
//! cost of an atomic (always served at the L2 coherence point, plus a
//! read-modify-write charge) versus a plain L1-served access is what drives
//! the paper's slowdown results; that ratio grows on newer generations,
//! producing the Fig. 6 trend.

/// Specification of a simulated GPU, mirroring one row of the paper's
/// Table I plus the timing parameters of the performance model.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Marketing name ("Titan V", "A100", …).
    pub name: &'static str,
    /// Architecture generation ("Volta", "Turing", "Ampere", "Ada Lovelace").
    pub architecture: &'static str,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// CUDA cores per SM (informational; Table I's core count / SMs).
    pub cores_per_sm: u32,
    /// Threads per warp (32 on every NVIDIA generation).
    pub warp_size: u32,
    /// Maximum concurrently resident threads per SM.
    pub max_threads_per_sm: u32,

    /// L1 cache size per SM, in KiB.
    pub l1_kib: u32,
    /// L1 associativity.
    pub l1_ways: u32,
    /// Unified L2 cache size, in KiB.
    pub l2_kib: u32,
    /// L2 associativity.
    pub l2_ways: u32,
    /// Cache sector/line size in bytes (32 B sectors on all four GPUs).
    pub line_bytes: u32,

    /// Throughput cost of an access served by L1 (cycles).
    pub l1_cycles: u32,
    /// Throughput cost of an access served by L2 (cycles).
    pub l2_cycles: u32,
    /// Throughput cost of an access served by DRAM (cycles).
    pub dram_cycles: u32,
    /// Additional cost of an atomic operation at the coherence point.
    pub atomic_extra_cycles: u32,
    /// Fixed cost per kernel launch (host → device round trip).
    pub launch_overhead_cycles: u64,
    /// Arithmetic cost charged per [`crate::Ctx::compute`] unit.
    pub alu_cycles: u32,

    /// SM clock in GHz; only used to convert cycles to nanoseconds for
    /// reporting.
    pub clock_ghz: f64,
    /// Whether the device performs plain 64-bit loads/stores as a single
    /// access. When `false`, plain 64-bit accesses split into two 32-bit
    /// halves and can tear (paper §II-A / Fig. 1). All four modeled GPUs
    /// support native 64-bit accesses; set this to `false` to emulate the
    /// 32-bit hardware the paper warns about.
    pub native_64bit: bool,
    /// Default per-launch watchdog budget in cycles (exceeding it raises
    /// [`crate::SimError::WatchdogTimeout`]). `None` disables the watchdog,
    /// like a compute-dedicated GPU with no display timeout; override per
    /// device with [`crate::Gpu::set_watchdog`].
    pub watchdog_cycles: Option<u64>,
}

impl GpuConfig {
    /// NVIDIA Titan V (Volta, sm_70): 80 SMs, 96 KiB L1, 4.5 MiB L2.
    pub fn titan_v() -> Self {
        GpuConfig {
            name: "Titan V",
            architecture: "Volta",
            num_sms: 80,
            cores_per_sm: 64,
            warp_size: 32,
            max_threads_per_sm: 2048,
            l1_kib: 96,
            l1_ways: 4,
            l2_kib: 4608,
            l2_ways: 16,
            line_bytes: 32,
            l1_cycles: 4,
            l2_cycles: 13,
            dram_cycles: 36,
            atomic_extra_cycles: 3,
            launch_overhead_cycles: 6_000,
            alu_cycles: 1,
            clock_ghz: 1.455,
            native_64bit: true,
            watchdog_cycles: None,
        }
    }

    /// NVIDIA GeForce RTX 2070 Super (Turing, sm_75): 40 SMs, 96 KiB L1,
    /// 4 MiB L2. Turing's L2 slice design keeps atomics comparatively cheap,
    /// which is why the paper sees the smallest race-free penalty here.
    pub fn rtx2070_super() -> Self {
        GpuConfig {
            name: "2070 Super",
            architecture: "Turing",
            num_sms: 40,
            cores_per_sm: 64,
            warp_size: 32,
            max_threads_per_sm: 1024,
            l1_kib: 96,
            l1_ways: 4,
            l2_kib: 4096,
            l2_ways: 16,
            line_bytes: 32,
            l1_cycles: 4,
            l2_cycles: 6,
            dram_cycles: 28,
            atomic_extra_cycles: 2,
            launch_overhead_cycles: 5_000,
            alu_cycles: 1,
            clock_ghz: 1.77,
            native_64bit: true,
            watchdog_cycles: None,
        }
    }

    /// NVIDIA A100 40 GB (Ampere, sm_80): 108 SMs, 192 KiB L1, 40 MiB L2.
    pub fn a100() -> Self {
        GpuConfig {
            name: "A100",
            architecture: "Ampere",
            num_sms: 108,
            cores_per_sm: 64,
            warp_size: 32,
            max_threads_per_sm: 2048,
            l1_kib: 192,
            l1_ways: 4,
            l2_kib: 40_960,
            l2_ways: 16,
            line_bytes: 32,
            l1_cycles: 4,
            l2_cycles: 14,
            dram_cycles: 32,
            atomic_extra_cycles: 16,
            launch_overhead_cycles: 6_000,
            alu_cycles: 1,
            clock_ghz: 1.41,
            native_64bit: true,
            watchdog_cycles: None,
        }
    }

    /// NVIDIA GeForce RTX 4090 (Ada Lovelace, sm_89): 128 SMs, 128 KiB L1,
    /// 72 MiB L2. Ada's very fast L1/SM fabric makes the *relative* cost of
    /// going to the (physically distant) L2 for atomics the highest of the
    /// four GPUs — the paper's "more slowdown on newer GPUs" trend.
    pub fn rtx4090() -> Self {
        GpuConfig {
            name: "4090",
            architecture: "Ada Lovelace",
            num_sms: 128,
            cores_per_sm: 128,
            warp_size: 32,
            max_threads_per_sm: 1536,
            l1_kib: 128,
            l1_ways: 4,
            l2_kib: 73_728,
            l2_ways: 16,
            line_bytes: 32,
            l1_cycles: 3,
            l2_cycles: 20,
            dram_cycles: 42,
            atomic_extra_cycles: 10,
            launch_overhead_cycles: 5_000,
            alu_cycles: 1,
            clock_ghz: 2.52,
            native_64bit: true,
            watchdog_cycles: None,
        }
    }

    /// All four GPU presets, in the paper's Table I order.
    pub fn paper_gpus() -> Vec<GpuConfig> {
        vec![
            Self::titan_v(),
            Self::rtx2070_super(),
            Self::a100(),
            Self::rtx4090(),
        ]
    }

    /// Looks a preset up by name, case-insensitively: the four paper GPUs
    /// plus the [`GpuConfig::test_tiny`] test device (accepted as either
    /// `TestTiny` or `test-tiny`). This is how CLI flags, journal records,
    /// and repro bundles — which carry GPU *names* — get back to a
    /// configuration.
    pub fn by_name(name: &str) -> Option<GpuConfig> {
        let mut candidates = Self::paper_gpus();
        candidates.push(Self::test_tiny());
        candidates.into_iter().find(|g| {
            g.name.eq_ignore_ascii_case(name)
                || (g.name == "TestTiny" && name.eq_ignore_ascii_case("test-tiny"))
        })
    }

    /// A tiny 4-SM device for unit tests: small caches make hit/miss
    /// behavior easy to exercise deterministically.
    pub fn test_tiny() -> Self {
        GpuConfig {
            name: "TestTiny",
            architecture: "Test",
            num_sms: 4,
            cores_per_sm: 32,
            warp_size: 32,
            max_threads_per_sm: 256,
            l1_kib: 2,
            l1_ways: 2,
            l2_kib: 16,
            l2_ways: 4,
            line_bytes: 32,
            l1_cycles: 4,
            l2_cycles: 12,
            dram_cycles: 40,
            atomic_extra_cycles: 8,
            launch_overhead_cycles: 100,
            alu_cycles: 1,
            clock_ghz: 1.0,
            native_64bit: true,
            watchdog_cycles: None,
        }
    }

    /// Converts a cycle count to nanoseconds using the SM clock.
    pub fn cycles_to_ns(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_ghz
    }

    /// Maximum number of concurrently resident threads on the whole device.
    pub fn max_resident_threads(&self) -> u32 {
        self.num_sms * self.max_threads_per_sm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table_i() {
        let t = GpuConfig::titan_v();
        assert_eq!(t.num_sms, 80);
        assert_eq!(t.l1_kib, 96);
        let a = GpuConfig::a100();
        assert_eq!(a.num_sms, 108);
        assert_eq!(a.l2_kib, 40_960);
        let r = GpuConfig::rtx4090();
        assert_eq!(r.num_sms, 128);
        assert_eq!(r.cores_per_sm * r.num_sms, 16_384);
    }

    #[test]
    fn newer_gpus_have_costlier_atomics_relative_to_l1() {
        let ratio =
            |g: &GpuConfig| (g.l2_cycles + g.atomic_extra_cycles) as f64 / g.l1_cycles as f64;
        let turing = ratio(&GpuConfig::rtx2070_super());
        let volta = ratio(&GpuConfig::titan_v());
        let ampere = ratio(&GpuConfig::a100());
        let ada = ratio(&GpuConfig::rtx4090());
        assert!(turing < volta);
        assert!(volta <= ampere);
        assert!(ampere < ada);
    }

    #[test]
    fn cycles_to_ns_uses_clock() {
        let g = GpuConfig::test_tiny();
        assert_eq!(g.cycles_to_ns(1000), 1000.0);
    }

    #[test]
    fn by_name_resolves_presets() {
        assert_eq!(GpuConfig::by_name("A100").unwrap().num_sms, 108);
        assert_eq!(GpuConfig::by_name("titan v").unwrap().name, "Titan V");
        assert_eq!(GpuConfig::by_name("2070 Super").unwrap().name, "2070 Super");
        assert_eq!(GpuConfig::by_name("test-tiny").unwrap().name, "TestTiny");
        assert_eq!(GpuConfig::by_name("TESTTINY").unwrap().name, "TestTiny");
        assert!(GpuConfig::by_name("H100").is_none());
    }
}
