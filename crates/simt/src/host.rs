//! The host side: device construction, memory management, kernel launches,
//! and timing/profiling queries — the simulator's `cudaMalloc`/`cudaMemcpy`/
//! `<<<grid, block>>>` surface.

use crate::config::GpuConfig;
use crate::contract::{KernelContract, SanitizerState};
use crate::error::{self, catch_sim, SimError};
use crate::exec::{run_kernel, FullHooks, Hooks, Kernel, LaunchConfig};
use crate::fault::{FaultPlan, FaultReport, FaultState};
use crate::mem::{DeviceBuffer, DeviceValue, MemSystem, Memory};
use crate::metrics::{KernelStats, RunStats};
use crate::trace::Trace;

/// A simulated GPU: configuration, device memory, cache hierarchy, and the
/// accumulated launch history.
///
/// # Example
///
/// ```
/// use ecl_simt::{ForEach, Gpu, GpuConfig, LaunchConfig};
///
/// let mut gpu = Gpu::new(GpuConfig::rtx2070_super());
/// let data = gpu.alloc::<u32>(256);
/// gpu.upload(&data, &(0..256).collect::<Vec<u32>>());
/// let sum = gpu.alloc::<u32>(1);
/// gpu.launch(
///     LaunchConfig::for_items(256),
///     ForEach::new("sum", 256, move |ctx, i| {
///         let v = ctx.load(data.at(i as usize));
///         ctx.atomic_add_u32(sum.at(0), v);
///     }),
/// );
/// assert_eq!(gpu.download(&sum)[0], 255 * 256 / 2);
/// ```
pub struct Gpu {
    config: GpuConfig,
    memory: Memory,
    msys: MemSystem,
    trace: Option<Trace>,
    seed: u64,
    watchdog: Option<u64>,
    deadline: Option<std::time::Instant>,
    fault: Option<FaultState>,
    sanitizer: Option<SanitizerState>,
    launches: RunStats,
    total_cycles: u64,
}

impl std::fmt::Debug for Gpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gpu")
            .field("config", &self.config.name)
            .field("launches", &self.launches.num_launches())
            .field("total_cycles", &self.total_cycles)
            .finish_non_exhaustive()
    }
}

impl Gpu {
    /// Creates a device from a configuration.
    pub fn new(config: GpuConfig) -> Self {
        let msys = MemSystem::new(&config);
        let watchdog = config.watchdog_cycles;
        Gpu {
            config,
            memory: Memory::new(),
            msys,
            trace: None,
            seed: 0,
            watchdog,
            deadline: None,
            fault: None,
            sanitizer: None,
            launches: RunStats::default(),
            total_cycles: 0,
        }
    }

    /// The device's configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Sets the scheduler-interleaving seed (the paper's repeated runs map to
    /// distinct seeds here).
    pub fn set_seed(&mut self, seed: u64) {
        self.seed = seed;
    }

    /// Sets (or clears) the per-launch watchdog budget, in cycles. A launch
    /// whose busiest SM exceeds the budget fails with
    /// [`SimError::WatchdogTimeout`] instead of running on — the simulator's
    /// version of a driver-level kernel timeout. Defaults to the device
    /// configuration's `watchdog_cycles`.
    pub fn set_watchdog(&mut self, budget_cycles: Option<u64>) {
        self.watchdog = budget_cycles;
    }

    /// The active watchdog budget, if any.
    pub fn watchdog(&self) -> Option<u64> {
        self.watchdog
    }

    /// Sets (or clears) a host wall-clock deadline for subsequent launches.
    /// A launch still running when the deadline passes fails with
    /// [`SimError::DeadlineExceeded`] — the real-time complement to the
    /// cycle-budget watchdog, checked at the same per-round granularity.
    /// Isolated sweep workers arm this from their cell's wall-clock budget
    /// so an overrunning simulation dies as a typed, journalable error
    /// instead of being SIGKILLed from outside.
    ///
    /// The deadline only affects the *error* path: runs that finish in time
    /// are bit-identical with or without one armed.
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.deadline = deadline;
    }

    /// The active wall-clock deadline, if any.
    pub fn deadline(&self) -> Option<std::time::Instant> {
        self.deadline
    }

    /// The armed fault plan, if any (the running state's counters are
    /// internal; see [`Gpu::fault_report`] for what it has injected).
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref().map(|f| &f.plan)
    }

    /// Arms seeded fault injection for subsequent launches. The plan's
    /// decision stream persists across launches (a multi-kernel algorithm
    /// sees one continuous schedule); re-arming resets it.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = Some(FaultState::new(plan));
    }

    /// Disarms fault injection.
    pub fn clear_fault_plan(&mut self) {
        self.fault = None;
    }

    /// What the armed fault plan has injected so far, if one is armed.
    pub fn fault_report(&self) -> Option<&FaultReport> {
        self.fault.as_ref().map(|f| f.report())
    }

    /// Installs kernel access contracts and arms the dynamic sanitizer:
    /// every subsequent device access is validated against the launched
    /// kernel's declared footprint, and the first out-of-contract access
    /// fails the launch with a typed [`SimError::ContractViolation`].
    /// Kernels without a contract and accesses to unnamed allocations are
    /// violations too — enforcement is strict by design.
    pub fn install_contracts(&mut self, contracts: impl IntoIterator<Item = KernelContract>) {
        self.sanitizer = Some(SanitizerState::new(contracts));
    }

    /// Disarms the contract sanitizer.
    pub fn clear_contracts(&mut self) {
        self.sanitizer = None;
    }

    /// Installs an IR-derived access-mode dispatch table (see
    /// [`crate::ir::ModeTable`]): kernels running through the `IrDriven`
    /// access policy will issue each policy-mediated access with the mode
    /// the table prescribes for its `(kernel, buffer)` group. This is how a
    /// synthesized (repaired) kernel IR executes without new kernel code.
    pub fn install_mode_table(&mut self, table: crate::ir::ModeTable) {
        self.memory.set_mode_table(Some(table));
    }

    /// Removes the installed mode table.
    pub fn clear_mode_table(&mut self) {
        self.memory.set_mode_table(None);
    }

    /// True when the contract sanitizer is armed.
    pub fn sanitizer_armed(&self) -> bool {
        self.sanitizer.is_some()
    }

    /// Enables access tracing for race detection. Tracing is off by default
    /// because traces grow with every access. The trace holds at most
    /// [`crate::trace::DEFAULT_EVENT_CAP`] events; past that, events are
    /// counted as dropped (see [`Trace::truncated`]) instead of exhausting
    /// memory. Use [`Gpu::enable_tracing_with_cap`] to change the bound.
    pub fn enable_tracing(&mut self) {
        self.trace = Some(Trace::new());
    }

    /// Enables access tracing with an explicit event cap (`None` =
    /// unbounded).
    pub fn enable_tracing_with_cap(&mut self, cap: Option<usize>) {
        self.trace = Some(Trace::with_event_cap(cap));
    }

    /// The recorded trace, if tracing is enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Allocates `len` zero-initialized elements in device memory.
    pub fn alloc<T: DeviceValue>(&mut self, len: usize) -> DeviceBuffer<T> {
        self.memory.alloc(len)
    }

    /// Allocates like [`Gpu::alloc`] and names the allocation so race
    /// reports can identify the array (e.g. `node_stat`, `label`).
    pub fn alloc_named<T: DeviceValue>(&mut self, len: usize, name: &str) -> DeviceBuffer<T> {
        let buf = self.memory.alloc(len);
        self.memory.set_allocation_name(buf.as_ptr().addr(), name);
        buf
    }

    /// Copies host data into a device buffer (`cudaMemcpyHostToDevice`).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() > buf.len()`.
    pub fn upload<T: DeviceValue>(&mut self, buf: &DeviceBuffer<T>, data: &[T]) {
        assert!(data.len() <= buf.len(), "upload larger than buffer");
        for (i, &v) in data.iter().enumerate() {
            self.memory.write(buf.at(i), v);
        }
    }

    /// Copies a device buffer back to the host (`cudaMemcpyDeviceToHost`).
    pub fn download<T: DeviceValue>(&self, buf: &DeviceBuffer<T>) -> Vec<T> {
        (0..buf.len())
            .map(|i| self.memory.read(buf.at(i)))
            .collect()
    }

    /// Reads a single element without a full download.
    pub fn read_scalar<T: DeviceValue>(&self, buf: &DeviceBuffer<T>, index: usize) -> T {
        self.memory.read(buf.at(index))
    }

    /// Writes a single element from the host.
    pub fn write_scalar<T: DeviceValue>(&mut self, buf: &DeviceBuffer<T>, index: usize, v: T) {
        self.memory.write(buf.at(index), v);
    }

    /// Launches a kernel and runs it to completion, accumulating its cycles
    /// into the device timeline. Returns the launch's stats.
    ///
    /// # Panics
    ///
    /// Panics on any launch failure ([`Gpu::try_launch`] lists them): the
    /// watchdog, an out-of-bounds device access, barrier divergence,
    /// scheduler livelock, or an exhausted fault budget. The panic carries
    /// the error's display text, and the typed [`SimError`] is recoverable
    /// with [`crate::catch_sim`].
    pub fn launch<K: Kernel>(&mut self, launch: LaunchConfig, kernel: K) -> &KernelStats {
        match self.launch_inner::<FullHooks, K>(launch, &kernel) {
            Ok(()) => self.launches.launches.last().unwrap(),
            Err(e) => {
                error::stash(e.clone());
                panic!("{e}");
            }
        }
    }

    /// Launches a kernel, reporting failures as a typed [`SimError`] instead
    /// of panicking: watchdog timeout, out-of-bounds device access, barrier
    /// divergence, scheduler livelock, or fault-budget exhaustion. On error
    /// the launch is not recorded in the stats timeline (device memory may
    /// still have been partially written, as on a real GPU fault).
    pub fn try_launch<K: Kernel>(
        &mut self,
        launch: LaunchConfig,
        kernel: K,
    ) -> Result<&KernelStats, SimError> {
        self.launch_inner::<FullHooks, K>(launch, &kernel)?;
        Ok(self.launches.launches.last().unwrap())
    }

    /// Whether the next launch may take the monomorphized fast path
    /// ([`crate::NoHooks`]): true when no per-access hook — tracing, fault
    /// injection, or the contract sanitizer — is armed. The watchdog and
    /// wall-clock deadline do not affect eligibility (they are per-round
    /// checks performed identically on both paths).
    pub fn fast_path_eligible(&self) -> bool {
        self.trace.is_none() && self.fault.is_none() && self.sanitizer.is_none()
    }

    /// [`Gpu::launch`] with an explicit interpreter path `H`.
    ///
    /// # Panics
    ///
    /// Panics on the launch failures [`Gpu::try_launch`] lists, and when
    /// `H` is [`crate::NoHooks`] while a hook is armed (see
    /// [`Gpu::try_launch_with`]).
    pub fn launch_with<H: Hooks, K: Kernel<H>>(
        &mut self,
        launch: LaunchConfig,
        kernel: K,
    ) -> &KernelStats {
        match self.try_launch_with::<H, K>(launch, kernel) {
            Ok(_) => self.launches.launches.last().unwrap(),
            Err(e) => {
                error::stash(e.clone());
                panic!("{e}");
            }
        }
    }

    /// [`Gpu::try_launch`] with an explicit interpreter path `H`:
    /// [`crate::NoHooks`] monomorphizes the per-access hook code away,
    /// [`FullHooks`] keeps it. Callers pick the path once per launch, e.g.
    /// `if gpu.fast_path_eligible() { ..NoHooks.. } else { ..FullHooks.. }`.
    ///
    /// # Panics
    ///
    /// Panics when `H` is [`crate::NoHooks`] but a hook is armed — silently
    /// skipping an armed tracer/fault plan/sanitizer would be a correctness
    /// bug, so the mismatch fails loudly.
    pub fn try_launch_with<H: Hooks, K: Kernel<H>>(
        &mut self,
        launch: LaunchConfig,
        kernel: K,
    ) -> Result<&KernelStats, SimError> {
        assert!(
            H::HOOKED || self.fast_path_eligible(),
            "NoHooks launch with a hook armed: tracing={} fault={} sanitizer={}",
            self.trace.is_some(),
            self.fault.is_some(),
            self.sanitizer.is_some(),
        );
        self.launch_inner(launch, &kernel)?;
        Ok(self.launches.launches.last().unwrap())
    }

    fn launch_inner<H: Hooks, K: Kernel<H>>(
        &mut self,
        launch: LaunchConfig,
        kernel: &K,
    ) -> Result<(), SimError> {
        let id = self.launches.num_launches() as u32;
        // Destructure so the catch_unwind closure borrows fields, not self.
        let Gpu {
            config,
            memory,
            msys,
            trace,
            seed,
            watchdog,
            deadline,
            fault,
            sanitizer,
            ..
        } = self;
        let (seed, watchdog, deadline) = (*seed, *watchdog, *deadline);
        let stats = catch_sim(|| {
            run_kernel(
                config,
                memory,
                msys,
                trace.as_mut(),
                id,
                seed,
                watchdog,
                deadline,
                fault.as_mut(),
                sanitizer.as_mut(),
                launch,
                kernel,
            )
        })??;
        self.total_cycles += stats.cycles;
        self.launches.launches.push(stats);
        Ok(())
    }

    /// Total simulated cycles across all launches so far.
    pub fn elapsed_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Total simulated time in nanoseconds.
    pub fn elapsed_ns(&self) -> f64 {
        self.config.cycles_to_ns(self.total_cycles)
    }

    /// Stats of the most recent launch.
    pub fn last_stats(&self) -> Option<&KernelStats> {
        self.launches.launches.last()
    }

    /// The full launch history.
    pub fn run_stats(&self) -> &RunStats {
        &self.launches
    }

    /// Resets the timeline and launch history but keeps memory contents and
    /// cache state (like `cudaEventRecord` bracketing only the timed region).
    pub fn reset_timing(&mut self) {
        self.total_cycles = 0;
        self.launches = RunStats::default();
    }

    /// Direct access to device memory for host-side verification code.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ForEach;

    #[test]
    fn upload_download_roundtrip() {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let buf = gpu.alloc::<u64>(8);
        let data: Vec<u64> = (0..8).map(|i| i * 1000).collect();
        gpu.upload(&buf, &data);
        assert_eq!(gpu.download(&buf), data);
        assert_eq!(gpu.read_scalar(&buf, 3), 3000);
    }

    #[test]
    fn elapsed_accumulates_across_launches() {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let buf = gpu.alloc::<u32>(64);
        gpu.launch(
            LaunchConfig::for_items(64),
            ForEach::new("a", 64, move |ctx, i| ctx.store(buf.at(i as usize), 1)),
        );
        let after_one = gpu.elapsed_cycles();
        assert!(after_one > 0);
        gpu.launch(
            LaunchConfig::for_items(64),
            ForEach::new("b", 64, move |ctx, i| ctx.store(buf.at(i as usize), 2)),
        );
        assert!(gpu.elapsed_cycles() > after_one);
        assert_eq!(gpu.run_stats().num_launches(), 2);
        gpu.reset_timing();
        assert_eq!(gpu.elapsed_cycles(), 0);
        // Memory survives the timing reset.
        assert_eq!(gpu.download(&buf)[0], 2);
    }

    #[test]
    fn tracing_records_accesses() {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        gpu.enable_tracing();
        let buf = gpu.alloc::<u32>(16);
        gpu.launch(
            LaunchConfig::for_items(16),
            ForEach::new("t", 16, move |ctx, i| ctx.store(buf.at(i as usize), i)),
        );
        let trace = gpu.trace().unwrap();
        assert_eq!(trace.len(), 16);
        assert_eq!(trace.kernel_name(0), Some("t"));
    }

    #[test]
    fn seeds_change_interleaving_but_not_results() {
        let run = |seed: u64| -> (Vec<u32>, u64) {
            let mut gpu = Gpu::new(GpuConfig::test_tiny());
            gpu.set_seed(seed);
            let buf = gpu.alloc::<u32>(512);
            gpu.launch(
                LaunchConfig::for_items(512),
                ForEach::new("w", 512, move |ctx, i| ctx.store(buf.at(i as usize), i * 3)),
            );
            (gpu.download(&buf), gpu.elapsed_cycles())
        };
        let (r1, _) = run(1);
        let (r2, _) = run(2);
        assert_eq!(r1, r2);
    }

    #[test]
    #[should_panic(expected = "upload larger")]
    fn oversized_upload_panics() {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let buf = gpu.alloc::<u32>(2);
        gpu.upload(&buf, &[1, 2, 3]);
    }
}
