//! A deterministic software SIMT simulator — the GPU substrate for the
//! ECL-Suite reproduction.
//!
//! Real CUDA-capable GPUs are replaced by a single-threaded, seeded model of
//! the architectural mechanisms the paper's results hinge on:
//!
//! - **Memory hierarchy** ([`mem`]): per-SM L1 caches and a shared L2 with
//!   configurable geometry and per-level throughput costs.
//! - **Access classes** ([`access`]): *plain* accesses are served by L1 and
//!   may have their stores deferred by the compiler model; *volatile*
//!   accesses bypass L1 (as CUDA's `ld.global.cg` does) and are immediately
//!   visible; *atomic* accesses are performed at the L2 coherence point with
//!   an extra read-modify-write cost.
//! - **Compiler model** ([`exec::StoreVisibility`]): baseline codes with
//!   plain stores can have those stores coalesced and deferred (kept in
//!   registers), delaying when other threads observe them — the mechanism
//!   the paper credits for both the "benign" races and the MIS speedup.
//! - **Execution** ([`exec`]): kernels run as cooperatively-scheduled thread
//!   coroutines grouped into warps, blocks, and SMs, with block-level
//!   barriers and seeded interleaving.
//! - **Word tearing** ([`mem`]): plain 64-bit accesses split into two
//!   32-bit halves on devices without native 64-bit accesses, making the
//!   paper's Fig. 1 chimera values reproducible.
//! - **Fault injection & recovery** ([`fault`], [`error`]): a seeded
//!   [`FaultPlan`] can flip bits on loads, perturb the compiler model's
//!   store drains, and jitter the scheduler; launch failures (watchdog
//!   timeout, out-of-bounds access, livelock, barrier divergence, fault
//!   budget) surface as typed [`SimError`]s through [`Gpu::try_launch`] or
//!   [`catch_sim`].
//!
//! # Example
//!
//! ```
//! use ecl_simt::{ForEach, Gpu, GpuConfig, LaunchConfig};
//!
//! let mut gpu = Gpu::new(GpuConfig::a100());
//! let buf = gpu.alloc::<u32>(1024);
//! gpu.launch(
//!     LaunchConfig::for_items(1024),
//!     ForEach::new("fill", 1024, move |ctx, i| {
//!         ctx.store(buf.at(i as usize), i * 2);
//!     }),
//! );
//! let host = gpu.download(&buf);
//! assert_eq!(host[10], 20);
//! assert!(gpu.elapsed_cycles() > 0);
//! ```

pub mod access;
pub mod config;
pub mod contract;
pub mod error;
pub mod exec;
pub mod fault;
pub mod host;
pub mod ir;
pub mod mem;
pub mod metrics;
pub mod trace;

pub use access::{AccessKind, AccessMode, MemOrder, Scope};
pub use config::GpuConfig;
pub use contract::{BenignClass, FootprintEntry, IndexDiscipline, KernelContract, SHARED_BUFFER};
pub use error::{catch_any, catch_sim, ContractViolationDetail, SimError};
pub use exec::{
    Ctx, ForEach, FullHooks, Hooks, Kernel, LaunchConfig, NoHooks, Step, StoreVisibility,
    ThreadInfo,
};
pub use fault::{FaultPlan, FaultReport};
pub use host::Gpu;
pub use ir::{lower_all, AccessOp, KernelIr, ModePair, ModeTable, OpKind, OpWidth};
pub use mem::{DeviceBuffer, DevicePtr, DeviceValue, MemLevel};
pub use metrics::KernelStats;
pub use trace::{AccessEvent, Space, Trace, DEFAULT_EVENT_CAP};
