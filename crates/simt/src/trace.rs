//! Access-event tracing for dynamic race detection.
//!
//! When tracing is enabled on a [`crate::Gpu`], every device memory access
//! is appended to the trace together with enough ordering information
//! (launch id, block, barrier phase) for `ecl-racecheck` to decide which
//! pairs of accesses are concurrent.

use crate::access::{AccessKind, AccessMode, MemOrder, Scope as ThreadScope};

/// Which address space an access touched.
///
/// Global memory is shared by the whole grid; shared memory is private to a
/// block (and is the only space the Compute-Sanitizer-like detector mode
/// checks — see `ecl-racecheck`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Space {
    /// Device-global memory.
    Global,
    /// Per-block shared memory (addresses are block-local offsets).
    Shared,
}

/// One recorded device memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessEvent {
    /// Global vs per-block shared memory.
    pub space: Space,
    /// Kernel launch this access belongs to (kernel boundaries synchronize).
    pub launch: u32,
    /// Global thread id of the accessor.
    pub thread: u32,
    /// Block the thread belongs to.
    pub block: u32,
    /// Barrier phase within the block (incremented at each `__syncthreads`).
    pub phase: u32,
    /// Byte address of the access.
    pub addr: u32,
    /// Width in bytes (1, 4, or 8).
    pub width: u32,
    /// Plain / volatile / atomic.
    pub mode: AccessMode,
    /// Load / store / read-modify-write.
    pub kind: AccessKind,
    /// Thread scope of an atomic access (`Device` for everything else).
    pub scope: ThreadScope,
    /// Memory ordering of an atomic access (`Relaxed` for everything else).
    /// Only acquire/release/seq_cst atomics establish happens-before edges
    /// for the vector-clock detector.
    pub order: MemOrder,
}

/// A growable list of [`AccessEvent`]s plus per-launch kernel names.
#[derive(Debug, Default)]
pub struct Trace {
    events: Vec<AccessEvent>,
    kernel_names: Vec<String>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends one event.
    #[inline]
    pub fn record(&mut self, event: AccessEvent) {
        self.events.push(event);
    }

    /// Registers the name of launch `id`; called once per kernel launch.
    pub fn name_launch(&mut self, id: u32, name: &str) {
        debug_assert_eq!(id as usize, self.kernel_names.len());
        self.kernel_names.push(name.to_string());
    }

    /// All recorded events, in execution order.
    pub fn events(&self) -> &[AccessEvent] {
        &self.events
    }

    /// The kernel name for a launch id, if known.
    pub fn kernel_name(&self, launch: u32) -> Option<&str> {
        self.kernel_names.get(launch as usize).map(|s| s.as_str())
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drops all recorded events and names.
    pub fn clear(&mut self) {
        self.events.clear();
        self.kernel_names.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_lookup() {
        let mut t = Trace::new();
        t.name_launch(0, "init");
        t.record(AccessEvent {
            space: Space::Global,
            launch: 0,
            thread: 3,
            block: 0,
            phase: 0,
            addr: 128,
            width: 4,
            mode: AccessMode::Plain,
            kind: AccessKind::Store,
            scope: ThreadScope::Device,
            order: MemOrder::Relaxed,
        });
        assert_eq!(t.len(), 1);
        assert_eq!(t.kernel_name(0), Some("init"));
        assert_eq!(t.kernel_name(1), None);
        t.clear();
        assert!(t.is_empty());
    }
}
