//! Access-event tracing for dynamic race detection.
//!
//! When tracing is enabled on a [`crate::Gpu`], every device memory access
//! is appended to the trace together with enough ordering information
//! (launch id, block, barrier phase) for `ecl-racecheck` to decide which
//! pairs of accesses are concurrent.

use crate::access::{AccessKind, AccessMode, MemOrder, Scope as ThreadScope};

/// Which address space an access touched.
///
/// Global memory is shared by the whole grid; shared memory is private to a
/// block (and is the only space the Compute-Sanitizer-like detector mode
/// checks — see `ecl-racecheck`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Space {
    /// Device-global memory.
    Global,
    /// Per-block shared memory (addresses are block-local offsets).
    Shared,
}

/// One recorded device memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessEvent {
    /// Global vs per-block shared memory.
    pub space: Space,
    /// Kernel launch this access belongs to (kernel boundaries synchronize).
    pub launch: u32,
    /// Global thread id of the accessor.
    pub thread: u32,
    /// Block the thread belongs to.
    pub block: u32,
    /// Barrier phase within the block (incremented at each `__syncthreads`).
    pub phase: u32,
    /// Byte address of the access.
    pub addr: u32,
    /// Width in bytes (1, 4, or 8).
    pub width: u32,
    /// Plain / volatile / atomic.
    pub mode: AccessMode,
    /// Load / store / read-modify-write.
    pub kind: AccessKind,
    /// Thread scope of an atomic access (`Device` for everything else).
    pub scope: ThreadScope,
    /// Memory ordering of an atomic access (`Relaxed` for everything else).
    /// Only acquire/release/seq_cst atomics establish happens-before edges
    /// for the vector-clock detector.
    pub order: MemOrder,
}

/// Default event cap: ~256 MiB of events, far above anything the race
/// detector can usefully analyze, but low enough that a tracing run over an
/// unexpectedly large workload degrades to a truncated trace instead of
/// taking the process down with it.
pub const DEFAULT_EVENT_CAP: usize = 8 * 1024 * 1024;

/// A bounded list of [`AccessEvent`]s plus per-launch kernel names.
///
/// Kernel names are stored deduplicated: a sweep that launches the same
/// kernel hundreds of times (e.g. `scc_propagate` rounds) stores the name
/// string once and one index per launch, not one `String` per launch.
///
/// The event list is capped (configurable via [`Trace::with_event_cap`]).
/// Once the cap is hit further events are counted, not stored, and
/// [`Trace::truncated`] reports how many were dropped — a typed marker the
/// race detector can surface instead of silently analyzing a partial trace.
#[derive(Debug)]
pub struct Trace {
    events: Vec<AccessEvent>,
    /// Unique kernel names, in first-launch order.
    names: Vec<String>,
    /// Per-launch index into `names`.
    launch_names: Vec<u32>,
    /// Maximum number of stored events (`usize::MAX` = unbounded).
    cap: usize,
    /// Events dropped after the cap was reached.
    dropped: u64,
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new()
    }
}

impl Trace {
    /// Creates an empty trace with the default event cap
    /// ([`DEFAULT_EVENT_CAP`]).
    pub fn new() -> Self {
        Trace::with_event_cap(Some(DEFAULT_EVENT_CAP))
    }

    /// Creates an empty trace holding at most `cap` events (`None` =
    /// unbounded, the pre-cap behavior: the trace grows with every access
    /// until allocation fails).
    pub fn with_event_cap(cap: Option<usize>) -> Self {
        Trace {
            events: Vec::new(),
            names: Vec::new(),
            launch_names: Vec::new(),
            cap: cap.unwrap_or(usize::MAX),
            dropped: 0,
        }
    }

    /// Appends one event; once the cap is reached, counts it as dropped
    /// instead.
    #[inline]
    pub fn record(&mut self, event: AccessEvent) {
        if self.events.len() >= self.cap {
            self.dropped += 1;
            return;
        }
        self.events.push(event);
    }

    /// Registers the name of launch `id`; called once per kernel launch.
    /// Repeated names share one stored string.
    pub fn name_launch(&mut self, id: u32, name: &str) {
        debug_assert_eq!(id as usize, self.launch_names.len());
        let idx = match self.names.iter().position(|n| n == name) {
            Some(i) => i as u32,
            None => {
                self.names.push(name.to_string());
                (self.names.len() - 1) as u32
            }
        };
        self.launch_names.push(idx);
    }

    /// All recorded events, in execution order.
    pub fn events(&self) -> &[AccessEvent] {
        &self.events
    }

    /// The kernel name for a launch id, if known.
    pub fn kernel_name(&self, launch: u32) -> Option<&str> {
        self.launch_names
            .get(launch as usize)
            .map(|&i| self.names[i as usize].as_str())
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events dropped after the cap was reached, if any. A
    /// `Some(_)` trace is incomplete: race reports derived from it can have
    /// false negatives (the dropped tail is unanalyzed), never false
    /// positives.
    pub fn truncated(&self) -> Option<u64> {
        (self.dropped > 0).then_some(self.dropped)
    }

    /// Drops all recorded events and names; the cap is kept.
    pub fn clear(&mut self) {
        self.events.clear();
        self.names.clear();
        self.launch_names.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(addr: u32) -> AccessEvent {
        AccessEvent {
            space: Space::Global,
            launch: 0,
            thread: 3,
            block: 0,
            phase: 0,
            addr,
            width: 4,
            mode: AccessMode::Plain,
            kind: AccessKind::Store,
            scope: ThreadScope::Device,
            order: MemOrder::Relaxed,
        }
    }

    #[test]
    fn record_and_lookup() {
        let mut t = Trace::new();
        t.name_launch(0, "init");
        t.record(ev(128));
        assert_eq!(t.len(), 1);
        assert_eq!(t.kernel_name(0), Some("init"));
        assert_eq!(t.kernel_name(1), None);
        assert_eq!(t.truncated(), None);
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn repeated_kernel_names_are_stored_once() {
        let mut t = Trace::new();
        for id in 0..100 {
            t.name_launch(id, if id % 2 == 0 { "propagate" } else { "settle" });
        }
        assert_eq!(t.names.len(), 2, "only unique names stored");
        assert_eq!(t.launch_names.len(), 100);
        assert_eq!(t.kernel_name(0), Some("propagate"));
        assert_eq!(t.kernel_name(97), Some("settle"));
        assert_eq!(t.kernel_name(98), Some("propagate"));
    }

    #[test]
    fn event_cap_degrades_to_truncation_marker() {
        let mut t = Trace::with_event_cap(Some(4));
        for i in 0..7 {
            t.record(ev(i * 4));
        }
        assert_eq!(t.len(), 4, "stores stop at the cap");
        assert_eq!(t.truncated(), Some(3), "dropped tail is counted");
        // The stored prefix is the *earliest* events, in order.
        assert_eq!(t.events()[3].addr, 12);
        t.clear();
        assert_eq!(t.truncated(), None);
        t.record(ev(0));
        assert_eq!(t.len(), 1, "cap persists across clear");
    }

    #[test]
    fn unbounded_trace_never_truncates() {
        let mut t = Trace::with_event_cap(None);
        for i in 0..10 {
            t.record(ev(i));
        }
        assert_eq!(t.len(), 10);
        assert_eq!(t.truncated(), None);
    }
}
